"""Derive composition certificates from structure alone.

Two derivation paths:

:func:`design_certificate`
    exact rational algebra over a :class:`~repro.core.dfg.MatrixDesign`.
    Partition the one-cycle coefficient matrix into the standard
    state-space blocks (``A``: delays -> delays, ``B``: inputs -> delays,
    ``C``: delays -> outputs, ``D``: inputs -> outputs) and bound the
    discrete-time convolution sums with induced infinity norms:

    - contraction: the smallest horizon ``h`` with ``||A^h|| < 1``
      (the *internal* small-gain condition -- feedback must shed energy
      within ``h`` cycles; an undamped accumulator has no such horizon
      and is uncertifiable, REPRO-C801);
    - ISS gain: ``||D|| + sum_k ||C A^k B||``, summed exactly over
      ``tail_windows * h`` terms, the geometric tail bounded by the
      contraction factor;
    - disturbance gain: ``1 + ||C|| * sum_k ||A^k||`` -- a per-cycle
      additive disturbance on every sink is either on an output sink
      directly (the 1) or enters the state and is amplified by at most
      the summed state response.

    Everything is a :class:`fractions.Fraction`; no floating point
    enters until the rate margins.

:func:`network_certificate`
    structural bounds over raw stoichiometry for hand-built reaction
    programs (clock, counter, FSM).  Signal mass may fan out (a gated
    copy reaction ``X -> X1 + X2`` doubles an error) but must not
    amplify around a loop: an expansive reaction (total product
    coefficients exceeding reactant coefficients over non-indicator
    species) may not sit on any cycle of the signal-conveyance graph
    (REPRO-C801: unbounded error growth).  The disturbance gain is the
    worst single-reaction expansion factor.

Both paths fold in the rate-separation margins of the lint rate
machinery: the settling rate is the slowest resolved *fast* rate and
the operating separation is the worst-case ``min(fast)/max(slow)``
over the module's reactions.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from repro.core.dfg import MatrixDesign, SignalFlowGraph
from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.species import Species
from repro.errors import CertifyError
from repro.certify.certificate import Certificate, CertifyConfig

#: Sparse exact matrix: ``{(row, col): value}`` with zero entries absent.
Matrix = Mapping[tuple[str, str], Fraction]

ZERO = Fraction(0)
ONE = Fraction(1)


# -- exact sparse linear algebra ----------------------------------------------

def _block(design: MatrixDesign, rows: Iterable[str],
           cols: Iterable[str]) -> dict[tuple[str, str], Fraction]:
    """Sub-matrix of the design's coefficients."""
    row_set, col_set = set(rows), set(cols)
    return {(sink, source): value
            for (sink, source), value in design.coefficients.items()
            if sink in row_set and source in col_set}


def _identity(names: Iterable[str]) -> dict[tuple[str, str], Fraction]:
    return {(name, name): ONE for name in names}


def _matmul(left: Matrix, right: Matrix) -> dict[tuple[str, str], Fraction]:
    """Sparse exact product ``left @ right``."""
    by_row: dict[str, list[tuple[str, Fraction]]] = {}
    for (row, mid), value in right.items():
        by_row.setdefault(row, []).append((mid, value))
    product: dict[tuple[str, str], Fraction] = {}
    for (row, mid), value in left.items():
        for col, inner in by_row.get(mid, ()):
            key = (row, col)
            total = product.get(key, ZERO) + value * inner
            if total:
                product[key] = total
            else:
                product.pop(key, None)
    return product


def _inf_norm(matrix: Matrix) -> Fraction:
    """Induced infinity norm: the largest absolute row sum."""
    rows: dict[str, Fraction] = {}
    for (row, _), value in matrix.items():
        rows[row] = rows.get(row, ZERO) + abs(value)
    return max(rows.values(), default=ZERO)


def _geometric_sum(terms: list[Fraction], window: int,
                   contraction: Fraction) -> Fraction:
    """Bound ``sum_k a_k`` for ``k >= 0`` given exact leading terms.

    ``terms`` holds ``a_0 .. a_{m-1}`` with ``m`` a multiple of
    ``window`` and ``a_{k+window} <= contraction * a_k``; the tail is
    bounded by the last window scaled by the geometric series.
    """
    exact = sum(terms, ZERO)
    if contraction == 0:
        return exact
    last_window = sum(terms[-window:], ZERO)
    return exact + last_window * contraction / (1 - contraction)


# -- rate margins -------------------------------------------------------------

def rate_margins(network: Network | None,
                 scheme: RateScheme) -> tuple[float, float]:
    """(settling_rate, separation) for a module.

    The settling rate is the slowest resolved *fast* rate (a lower
    bound on every transfer's exponential settling); the separation is
    the worst-case ``min(fast)/max(slow)`` over the module's reactions.
    Falls back to the scheme's own values when the module has no
    network or lacks one of the categories.  Unknown symbolic
    categories make settling unboundable -- REPRO-C801.
    """
    if network is None:
        return scheme.fast, scheme.separation
    from repro.lint.rules.rates import (AUXILIARY_CATEGORIES,
                                        classify_rate)

    fasts: list[float] = []
    slows: list[float] = []
    for reaction in network.reactions:
        rate = reaction.rate
        if isinstance(rate, str) and rate in AUXILIARY_CATEGORIES:
            continue
        category = classify_rate(rate, scheme)
        if category is None:
            raise CertifyError(
                f"network {network.name!r}: reaction {reaction} uses "
                f"unknown rate category {rate!r}; settling cannot be "
                f"bounded (REPRO-C801)")
        resolved = scheme.resolve(rate)
        if category == "fast":
            fasts.append(resolved)
        else:
            slows.append(resolved)
    settling = min(fasts) if fasts else scheme.fast
    if fasts and slows:
        separation = min(fasts) / max(slows)
    else:
        separation = scheme.separation
    return settling, separation


# -- design path --------------------------------------------------------------

def design_certificate(design: MatrixDesign,
                       scheme: RateScheme | None = None,
                       config: CertifyConfig | None = None,
                       network: Network | None = None,
                       kind: str = "design") -> Certificate:
    """Certificate of a matrix-form design, by exact rational algebra.

    Raises :class:`~repro.errors.CertifyError` (REPRO-C801) when the
    delay-to-delay block has no contracting horizon -- internal
    feedback that never sheds energy admits no error bound.
    """
    scheme = scheme if scheme is not None else RateScheme()
    config = config if config is not None else CertifyConfig()
    design.validate()
    settling, separation = rate_margins(network, scheme)

    delays, inputs, outputs = design.delays, design.inputs, design.outputs
    a = _block(design, delays, delays)
    b = _block(design, delays, inputs)
    c = _block(design, outputs, delays)
    d = _block(design, outputs, inputs)
    d_norm = _inf_norm(d)
    c_norm = _inf_norm(c)

    if not delays:
        return Certificate(
            module=design.name, kind=kind, gain=d_norm,
            state_gain=ZERO, contraction=ZERO, horizon=0,
            transient=ONE, disturbance_gain=ONE,
            settling_rate=settling, separation=separation)

    # Find the contraction horizon: the smallest h with ||A^h|| < 1.
    limit = config.horizon_limit(len(delays))
    power = _identity(delays)
    powers = [power]
    norms = [ONE]
    horizon = None
    for step in range(1, limit + 1):
        power = _matmul(power, a)
        powers.append(power)
        norms.append(_inf_norm(power))
        if norms[-1] < 1:
            horizon = step
            break
    if horizon is None:
        raise CertifyError(
            f"module {design.name!r} is uncertifiable: "
            f"||A^k||_inf >= 1 for every horizon k <= {limit} "
            f"(||A^{limit}|| = {float(norms[-1]):.4g}); internal "
            f"feedback never contracts (REPRO-C801)")
    contraction = norms[horizon]
    transient = max(norms[:horizon], default=ONE)

    # Exact partial sums over tail_windows contraction windows, then a
    # geometric tail bound: a_{k+h} = ||X A^{k+h} Y|| <= ||A^h|| * a_k.
    n_terms = config.tail_windows * horizon
    while len(powers) <= n_terms - 1:
        power = _matmul(power, a)
        powers.append(power)
    t_terms = [_inf_norm(p) for p in powers[:n_terms]]
    sy_terms = [_inf_norm(_matmul(c, _matmul(p, b)))
                for p in powers[:n_terms]]
    sx_terms = [_inf_norm(_matmul(p, b)) for p in powers[:n_terms]]

    t_total = _geometric_sum(t_terms, horizon, contraction)
    gain = d_norm + _geometric_sum(sy_terms, horizon, contraction)
    state_gain = _geometric_sum(sx_terms, horizon, contraction)
    disturbance = ONE + c_norm * t_total

    return Certificate(
        module=design.name, kind=kind, gain=gain, state_gain=state_gain,
        contraction=contraction, horizon=horizon, transient=transient,
        disturbance_gain=disturbance, settling_rate=settling,
        separation=separation)


# -- network path -------------------------------------------------------------

def _signal_mass(network: Network,
                 side: Mapping[Species, int]) -> Fraction:
    """Total stoichiometric signal mass of one reaction side."""
    total = ZERO
    for species, coeff in side.items():
        if network.get_species(species.name).role != "indicator":
            total += Fraction(coeff)
    return total


def network_certificate(network: Network,
                        scheme: RateScheme | None = None,
                        config: CertifyConfig | None = None) -> Certificate:
    """Structural certificate of a raw reaction network.

    Signal mass must not amplify around a loop: reactions whose signal
    products outweigh their signal reactants (fan-out copies) are fine
    feed-forward, but a cycle of them grows errors without bound --
    REPRO-C801.  The worst single-reaction expansion factor is the
    per-cycle disturbance gain.
    """
    scheme = scheme if scheme is not None else RateScheme()
    config = config if config is not None else CertifyConfig()
    settling, separation = rate_margins(network, scheme)

    conveying_edges: list[tuple[str, str]] = []
    expansive_edges: list[tuple[str, str]] = []
    worst = ONE
    for reaction in network.reactions:
        reactant_mass = _signal_mass(network, reaction.reactants)
        if reactant_mass == 0:
            # Zeroth-order source: exogenous input, flux independent
            # of any state deviation -- amplifies no error.
            continue
        product_mass = _signal_mass(network, reaction.products)
        edges = [(source.name, target.name)
                 for source in reaction.reactants
                 if network.get_species(source.name).role != "indicator"
                 for target in reaction.products
                 if network.get_species(target.name).role != "indicator"]
        conveying_edges.extend(edges)
        if product_mass > reactant_mass:
            worst = max(worst, product_mass / reactant_mass)
            expansive_edges.extend(edges)

    # An expansive reaction may fan out feed-forward, but any cycle of
    # the signal-conveyance graph passing through an expansive edge
    # re-amplifies its own error every lap.
    if any(_reaches(conveying_edges, target, source)
           for source, target in expansive_edges):
        raise CertifyError(
            f"network {network.name!r} is uncertifiable: a signal-mass "
            f"expanding reaction sits on a feedback loop; errors "
            f"amplify without bound (REPRO-C801)")

    return Certificate(
        module=network.name, kind="network", gain=worst,
        state_gain=worst, contraction=ZERO, horizon=0, transient=ONE,
        disturbance_gain=worst, settling_rate=settling,
        separation=separation)


def _reaches(edges: list[tuple[str, str]], start: str,
             goal: str) -> bool:
    """True when ``goal`` is reachable from ``start`` (inclusive)."""
    adjacency: dict[str, list[str]] = {}
    for source, target in edges:
        adjacency.setdefault(source, []).append(target)
    seen: set[str] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adjacency.get(node, ()))
    return False


# -- dispatch -----------------------------------------------------------------

def certificate_for(target: object, scheme: RateScheme | None = None,
                    config: CertifyConfig | None = None) -> Certificate:
    """Certificate for any certifiable object.

    Accepts a :class:`MatrixDesign`, a :class:`SignalFlowGraph`, a
    synthesized circuit (design algebra plus network rate margins), or
    a raw :class:`Network`.
    """
    if isinstance(target, MatrixDesign):
        return design_certificate(target, scheme, config)
    if isinstance(target, SignalFlowGraph):
        return design_certificate(target.to_matrix(), scheme, config)
    if isinstance(target, Network):
        return network_certificate(target, scheme, config)
    design = getattr(target, "design", None)
    network = getattr(target, "network", None)
    if isinstance(design, MatrixDesign):
        certificate = design_certificate(
            design, scheme, config,
            network=network if isinstance(network, Network) else None)
        return certificate
    raise CertifyError(
        f"cannot certify object of type {type(target).__name__}; "
        f"expected a design, signal-flow graph, circuit or network")
