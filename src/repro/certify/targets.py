"""Named certifiable design targets for the ``certify`` CLI.

A *spec* is a short string naming a design builder, optionally with a
colon-separated argument: ``ma`` / ``ma:4`` (moving average), ``iir``
/ ``iir:3/4`` (first-order IIR feedback coefficient), ``biquad``
(the lint builtin's coefficients), ``amp:K`` (a pure gain stage --
useful for demonstrating small-gain violations).  Comma-separated
specs build a cascade with unique intermediate link ports.
"""

from __future__ import annotations

from fractions import Fraction

from repro.apps.filters import biquad, iir_first_order, moving_average
from repro.core.compose import cascade, rename
from repro.core.dfg import MatrixDesign
from repro.errors import CertifyError


def _build_ma(arg: str | None) -> MatrixDesign:
    taps = int(arg) if arg else 2
    return moving_average(taps).to_matrix()


def _build_iir(arg: str | None) -> MatrixDesign:
    feedback = Fraction(arg) if arg else Fraction(1, 2)
    return iir_first_order(feedback=feedback).to_matrix()


def _build_biquad(arg: str | None) -> MatrixDesign:
    if arg is not None:
        raise CertifyError("biquad takes no argument")
    return biquad(Fraction(1, 4), Fraction(1, 2), Fraction(1, 4),
                  Fraction(-1, 4), Fraction(1, 8)).to_matrix()


def _build_amp(arg: str | None) -> MatrixDesign:
    gain = Fraction(arg) if arg else Fraction(2)
    name = f"amp_{gain.numerator}" if gain.denominator == 1 else "amp"
    return MatrixDesign(
        name=name, inputs=["x"], outputs=["y"], delays=[],
        coefficients={("y", "x"): gain}, initial_state={})


DESIGN_BUILDERS = {
    "ma": _build_ma,
    "iir": _build_iir,
    "biquad": _build_biquad,
    "amp": _build_amp,
}


def resolve_design(spec: str) -> MatrixDesign:
    """Build the design named by one spec string."""
    key, _, arg = spec.strip().partition(":")
    try:
        builder = DESIGN_BUILDERS[key]
    except KeyError:
        raise CertifyError(
            f"unknown design spec {spec!r}; "
            f"expected one of {sorted(DESIGN_BUILDERS)}") from None
    try:
        return builder(arg or None)
    except (ValueError, ZeroDivisionError) as exc:
        raise CertifyError(f"bad design spec {spec!r}: {exc}") from exc


def build_cascade(specs: list[str], name: str | None = None
                  ) -> MatrixDesign:
    """Cascade the designs named by ``specs`` left to right.

    Each seam gets a unique intermediate port name so single-port
    filters (all exposing ``x``/``y``) chain without collisions.
    """
    if not specs:
        raise CertifyError("cascade needs at least one design spec")
    stages = [resolve_design(spec) for spec in specs]
    composite = stages[0]
    for index, stage in enumerate(stages[1:], start=1):
        if len(composite.outputs) != 1 or len(stage.inputs) != 1:
            raise CertifyError(
                f"cascade specs must be single-input/single-output; "
                f"{composite.name!r} -> {stage.name!r} is not")
        seam = f"v{index}"
        left = rename(composite, outputs={composite.outputs[0]: seam})
        right = rename(stage, inputs={stage.inputs[0]: seam})
        composite = cascade(left, right)
    if name is not None:
        composite = rename(composite, name=name)
    return composite
