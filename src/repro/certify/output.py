"""Certify-run aggregation and rendering.

The ``certify`` CLI collects one :class:`CertifyResult` per target --
the derived certificate (``None`` when the module is uncertifiable)
plus the REPRO-C diagnostics from the lint pipeline -- and renders the
batch as text, deterministic JSON (sorted keys, exact rational
spellings), or SARIF through the shared lint renderer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.certify.certificate import Certificate, CertifyConfig
from repro.certify.derive import certificate_for
from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.errors import CertifyError
from repro.lint.engine import (LintConfig, LintReport, Severity,
                               lint_circuit, lint_network)

#: The lint rule implementing the REPRO-C namespace.
CERTIFICATE_RULE = "composition-certificate"


@dataclass(frozen=True)
class CertifyResult:
    """Certificate pass outcome for one target."""

    target: str
    certificate: Certificate | None
    report: LintReport
    config: CertifyConfig = field(default_factory=CertifyConfig)

    @property
    def certified(self) -> bool:
        return self.certificate is not None and self.report.ok

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "certified": self.certified,
            "certificate": (self.certificate.to_dict(self.config)
                            if self.certificate is not None else None),
            "diagnostics": [d.to_dict()
                            for d in self.report.diagnostics],
        }


def certify_target(display: str, target: object,
                   circuit: object | None = None,
                   config: CertifyConfig | None = None,
                   scheme: RateScheme | None = None) -> CertifyResult:
    """Certify one network-backed target through the lint pipeline.

    ``target`` is the raw :class:`~repro.crn.network.Network` (linted
    directly) or a synthesized circuit (pass it as ``circuit`` too so
    the design path runs).
    """
    config = config if config is not None else CertifyConfig()
    options: dict = {"certify_config": config}
    if scheme is not None:
        options["scheme"] = scheme
    lint_config = LintConfig(select=frozenset({CERTIFICATE_RULE}),
                             options=options)
    subject: object
    if circuit is not None:
        report = lint_circuit(circuit, lint_config, path=display)
        subject = circuit
    else:
        if not isinstance(target, Network):
            raise CertifyError(
                f"target {display!r} is not a reaction network; pass "
                f"the synthesized circuit via the circuit argument")
        report = lint_network(target, lint_config, path=display)
        subject = target
    try:
        certificate = certificate_for(subject, scheme, config)
    except CertifyError:
        certificate = None
    return CertifyResult(target=display, certificate=certificate,
                         report=report, config=config)


def render_text(results: list[CertifyResult]) -> str:
    lines: list[str] = []
    certified = 0
    for result in results:
        status = "CERTIFIED" if result.certified else "REJECTED"
        certified += result.certified
        lines.append(f"{result.target}: {status}")
        if result.certificate is not None:
            lines.extend("  " + line for line in
                         result.certificate.render(result.config)
                         .splitlines())
        for diag in result.report.diagnostics:
            lines.append(f"  {diag.format()}")
    lines.append(f"{len(results)} target(s): {certified} certified, "
                 f"{len(results) - certified} rejected")
    return "\n".join(lines)


def render_json(results: list[CertifyResult]) -> str:
    payload = {
        "version": 1,
        "targets": [result.to_dict() for result in results],
        "summary": {
            "targets": len(results),
            "certified": sum(r.certified for r in results),
            "rejected": sum(not r.certified for r in results),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(results: list[CertifyResult]) -> str:
    from repro.lint.output import render_sarif as lint_sarif

    return lint_sarif([(r.target, r.report) for r in results])


def exit_code(results: list[CertifyResult],
              fail_on: Severity | None = None) -> int:
    """1 when any target is uncertified or reaches the threshold."""
    code = 0
    for result in results:
        if not result.certified:
            code = 1
        code = max(code, result.report.exit_code(fail_on=fail_on))
    return code
