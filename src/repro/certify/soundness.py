"""Dynamic validation of static certificates.

A certificate claims: *at any fast/slow separation at or above*
``min_separation`` *the module computes digitally* (zero bit errors).
That claim is falsifiable, and this module tries to falsify it with
the fault-injection machinery:

:func:`certified_margin_campaign`
    runs seeded trial batches at separations spanning the certified
    region -- from exactly ``min_separation`` up to the nominal scheme
    -- with a :class:`~repro.faults.models.RateMismatch` jitter
    layered on top (compression models the systematic loss of
    separation, the mismatch models per-reaction spread).  A single
    digital failure inside the certified region disproves soundness.

:func:`margin_consistency`
    bisects the *measured* robustness margin of the same circuit and
    checks the static bound is conservative: the certificate must not
    certify any separation the campaign observed to fail
    (``min_separation >= failed_at``).

``tests/certify/test_soundness.py`` asserts both for the ``ma`` and
``iir`` circuits; ``docs/certify.md`` spells out the claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.filters import iir_first_order, moving_average
from repro.certify.certificate import Certificate, CertifyConfig
from repro.certify.derive import design_certificate
from repro.crn.rates import RateScheme
from repro.errors import CertifyError
from repro.faults.circuits import make_circuit
from repro.faults.margin import MarginResult, robustness_margin
from repro.faults.models import FaultPlan, RateMismatch

#: Designs behind the fault-campaign circuit adapters (the adapters
#: build the same filters internally; certificates need the matrix).
CERTIFIABLE_CIRCUITS = {
    "ma": lambda: moving_average(2).to_matrix(),
    "iir": lambda: iir_first_order().to_matrix(),
}


def circuit_certificate(name: str,
                        scheme: RateScheme | None = None,
                        config: CertifyConfig | None = None) -> Certificate:
    """Static certificate of a fault-campaign circuit."""
    try:
        builder = CERTIFIABLE_CIRCUITS[name]
    except KeyError:
        raise CertifyError(
            f"no certifiable design for circuit {name!r}; "
            f"choose from {sorted(CERTIFIABLE_CIRCUITS)}") from None
    return design_certificate(builder(), scheme, config)


@dataclass(frozen=True)
class SoundnessProbe:
    """One trial batch at one certified separation."""

    separation: float
    failures: int
    trials: int


@dataclass(frozen=True)
class SoundnessReport:
    """Outcome of a certified-margin campaign."""

    circuit: str
    min_separation: float
    failures: int
    trials: int
    probes: list[SoundnessProbe] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        """True when no certified separation produced a failure."""
        return self.failures == 0

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "min_separation": self.min_separation,
            "failures": self.failures,
            "trials": self.trials,
            "sound": self.sound,
            "probes": [{"separation": p.separation,
                        "failures": p.failures,
                        "trials": p.trials} for p in self.probes],
        }


def certified_margin_campaign(name: str, seed: int = 0,
                              trials: int = 3, points: int = 3,
                              sigma: float = 0.05,
                              config: CertifyConfig | None = None
                              ) -> SoundnessReport:
    """Attack the certified region; soundness means zero failures.

    Probes ``points`` separations geometrically spaced from the
    certificate's ``min_separation`` up to the nominal scheme's
    separation, each with ``trials`` seeded trials under a
    rate-mismatch fault of spread ``sigma``.
    """
    config = config if config is not None else CertifyConfig()
    adapter = make_circuit(name)
    nominal = adapter.nominal_scheme()
    certificate = circuit_certificate(name, nominal, config)
    floor = certificate.min_separation(config)
    ceiling = max(nominal.separation, floor)
    separations = np.geomspace(floor, ceiling, max(points, 1))

    root = np.random.SeedSequence(seed)
    probes: list[SoundnessProbe] = []
    total_failures = 0
    total_trials = 0
    for separation in separations:
        scheme = nominal.compressed(nominal.separation / separation)
        children = root.spawn(2 * trials)
        failures = 0
        for i in range(trials):
            plan = FaultPlan([RateMismatch(sigma=sigma)],
                             seed=children[2 * i])
            rng = np.random.default_rng(children[2 * i + 1])
            score = adapter.evaluate(scheme, plan=plan, rng=rng)
            if not score.ok:
                failures += 1
        probes.append(SoundnessProbe(separation=float(separation),
                                     failures=failures, trials=trials))
        total_failures += failures
        total_trials += trials
    return SoundnessReport(circuit=name, min_separation=floor,
                           failures=total_failures, trials=total_trials,
                           probes=probes)


def margin_consistency(name: str, seed: int = 0, trials: int = 2,
                       separation_lo: float = 4.0,
                       tolerance: float = 2.0,
                       config: CertifyConfig | None = None
                       ) -> tuple[Certificate, MarginResult]:
    """Measured margin next to the static bound.

    Returns the circuit's certificate and the bisected
    :class:`~repro.faults.margin.MarginResult`; the certificate is
    conservative when ``min_separation(config) >= failed_at`` (it
    never certifies a separation observed to fail).
    """
    config = config if config is not None else CertifyConfig()
    adapter = make_circuit(name)
    certificate = circuit_certificate(name, adapter.nominal_scheme(),
                                      config)
    result = robustness_margin(adapter, models=(), seed=seed,
                               trials=trials,
                               separation_lo=separation_lo,
                               tolerance=tolerance)
    return certificate, result
