"""Composition certificates: the data model.

A :class:`Certificate` is a *static* guarantee about one module -- a
:class:`~repro.core.dfg.MatrixDesign`, a synthesized circuit, or a raw
reaction network -- computed from structure alone (coefficients,
stoichiometry, rate categories; no simulation).  It follows the
input-to-state-stability composition line (arXiv:2506.12056,
arXiv:2512.07116): every module carries

- an **ISS gain bound** (worst-case input-to-output amplification over
  arbitrary input streams),
- a **state contraction** factor over a finite horizon (the internal
  small-gain condition: feedback must shed energy within ``horizon``
  cycles, or the module is uncertifiable),
- a **disturbance-amplification factor** (how much a per-cycle additive
  disturbance -- the protocol's settling residue -- can grow before it
  reaches an output), and
- **settling-rate margins** tying the above to the fast/slow rate
  separation the module runs at.

The certified claim, spelled out in ``docs/certify.md``: at a fast/slow
separation :math:`s`, the end-to-end output deviation from the exact
discrete-time reference is at most ``error_bound(s)``.  A module is
*certified* at an operating point when that bound stays inside the
digital noise margin; compositions inherit certificates through the
small-gain rules in :mod:`repro.certify.compose`.

Gains derived from design coefficients are exact rationals
(:class:`fractions.Fraction`), so certificates compose without rounding
drift and reports are bitwise deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from fractions import Fraction

from repro.errors import CertifyError

#: Digital noise margin: |measured - reference| above this is a bit
#: error.  Matches ``repro.faults.circuits.BIT_ERROR_TOLERANCE`` so the
#: static bound and the dynamic fault campaigns score the same event.
DEFAULT_NOISE_MARGIN = 0.5

#: Worst-case input amplitude the bound is evaluated at (the fault
#: campaigns drive samples up to 8.0).
DEFAULT_SIGNAL_SCALE = 8.0

#: Per-cycle settling-residue coefficient: one cycle of the three-phase
#: protocol leaves at most ``residual_coefficient / separation`` units
#: of un-transferred quantity per unit of signal (three phase stages
#: plus indicator-residue standing mass; calibrated conservative --
#: the soundness campaign in ``tests/certify/test_soundness.py`` checks
#: that the resulting bound over-estimates the measured breaking point).
DEFAULT_RESIDUAL_COEFFICIENT = 10.0


@dataclass(frozen=True)
class CertifyConfig:
    """Tuning knobs of the certificate pass.

    Parameters
    ----------
    noise_margin:
        absolute output deviation treated as a digital bit error.
    signal_scale:
        worst-case input amplitude the error bound is evaluated at.
    residual_coefficient:
        per-cycle disturbance is bounded by
        ``residual_coefficient / separation`` per unit of signal.
    headroom:
        REPRO-W803 fires when the operating separation is below
        ``headroom * min_separation`` -- certified, but with less
        slack than configured.
    phase_budget:
        fraction of one slow time unit a transfer may spend settling;
        REPRO-W804 fires when the required settle time exceeds it.
    tail_windows:
        number of contraction windows summed exactly before bounding
        the geometric tail (larger = tighter, slower).
    max_horizon:
        longest contraction horizon searched before declaring a module
        uncertifiable (default: ``max(2 * n_delays, 8)``).
    """

    noise_margin: float = DEFAULT_NOISE_MARGIN
    signal_scale: float = DEFAULT_SIGNAL_SCALE
    residual_coefficient: float = DEFAULT_RESIDUAL_COEFFICIENT
    headroom: float = 1.1
    phase_budget: float = 0.02
    tail_windows: int = 4
    max_horizon: int | None = None

    def __post_init__(self) -> None:
        if self.noise_margin <= 0:
            raise CertifyError("noise_margin must be positive")
        if self.signal_scale <= 0:
            raise CertifyError("signal_scale must be positive")
        if self.residual_coefficient <= 0:
            raise CertifyError("residual_coefficient must be positive")
        if self.headroom < 1.0:
            raise CertifyError("headroom must be >= 1")
        if self.phase_budget <= 0:
            raise CertifyError("phase_budget must be positive")
        if self.tail_windows < 1:
            raise CertifyError("tail_windows must be >= 1")

    def horizon_limit(self, n_delays: int) -> int:
        if self.max_horizon is not None:
            return max(1, int(self.max_horizon))
        return max(2 * n_delays, 8)


def _fraction_str(value: Fraction) -> str:
    """Deterministic JSON spelling of an exact rational."""
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


@dataclass(frozen=True)
class Certificate:
    """ISS-style composition certificate of one module.

    Attributes
    ----------
    module:
        name of the certified module.
    kind:
        how the certificate was derived: ``design`` (exact rational
        algebra over a :class:`~repro.core.dfg.MatrixDesign`),
        ``network`` (structural bounds over raw stoichiometry), or a
        composition rule (``cascade`` / ``parallel``).
    gain:
        ISS input-to-output gain: ``sup ||y||_inf / ||u||_inf`` over
        all bounded input streams, zero initial state.
    state_gain:
        ISS input-to-state gain (same, for the delay registers).
    contraction:
        ``||A^horizon||_inf`` of the delay-to-delay block -- strictly
        below one, or the module would be uncertifiable.
    horizon:
        number of cycles over which the state block contracts.
    transient:
        worst intermediate state amplification ``max ||A^k||_inf`` for
        ``k < horizon`` (overshoot before the contraction bites).
    disturbance_gain:
        worst-case output deviation per unit of per-cycle additive
        disturbance injected simultaneously at every sink.
    settling_rate:
        lower bound on the exponential settling rate of one transfer
        (the slowest resolved fast rate), in 1/time units.
    separation:
        the operating fast/slow separation the rate margins were
        evaluated at (worst-case over the module's reactions when a
        network is available, else the scheme ratio).
    """

    module: str
    kind: str
    gain: Fraction
    state_gain: Fraction
    contraction: Fraction
    horizon: int
    transient: Fraction
    disturbance_gain: Fraction
    settling_rate: float
    separation: float

    def __post_init__(self) -> None:
        if self.contraction >= 1:
            raise CertifyError(
                f"module {self.module!r}: contraction "
                f"{self.contraction} is not < 1 (REPRO-C801)")

    # -- the certified claim --------------------------------------------------

    def cycle_disturbance(self, separation: float,
                          config: CertifyConfig) -> float:
        """Per-cycle settling residue per unit signal at ``separation``."""
        if separation <= 0:
            raise CertifyError("separation must be positive")
        return config.residual_coefficient / separation

    def error_bound(self, separation: float,
                    config: CertifyConfig) -> float:
        """Certified worst-case output deviation at ``separation``.

        Per-cycle protocol residue (at most
        ``residual_coefficient / separation`` per unit signal) is
        amplified by at most :attr:`disturbance_gain` before reaching
        an output; signals are bounded by ``config.signal_scale``.
        """
        return (float(self.disturbance_gain)
                * self.cycle_disturbance(separation, config)
                * config.signal_scale)

    def min_separation(self, config: CertifyConfig) -> float:
        """Smallest separation at which the bound stays digital.

        Solves ``error_bound(s) == noise_margin`` for ``s``; at any
        separation at or above this the certificate guarantees zero
        bit errors.
        """
        return (float(self.disturbance_gain) * config.residual_coefficient
                * config.signal_scale / config.noise_margin)

    def required_settle_time(self, config: CertifyConfig) -> float:
        """Time one transfer needs to settle inside the noise margin.

        A transfer decays exponentially at :attr:`settling_rate`; it
        must shrink a full-scale amplified signal below the noise
        margin, i.e. run for ``ln(gain * scale / margin)`` e-folds.
        """
        folds = math.log(max(
            float(self.disturbance_gain) * config.signal_scale
            / config.noise_margin, math.e))
        return folds / self.settling_rate

    def certified_at(self, separation: float,
                     config: CertifyConfig) -> bool:
        """True when the error bound stays inside the noise margin."""
        return self.error_bound(separation, config) <= config.noise_margin

    # -- serialisation --------------------------------------------------------

    def renamed(self, module: str) -> "Certificate":
        return replace(self, module=module)

    def to_dict(self, config: CertifyConfig | None = None) -> dict:
        payload = {
            "module": self.module,
            "kind": self.kind,
            "gain": _fraction_str(self.gain),
            "state_gain": _fraction_str(self.state_gain),
            "contraction": _fraction_str(self.contraction),
            "horizon": self.horizon,
            "transient": _fraction_str(self.transient),
            "disturbance_gain": _fraction_str(self.disturbance_gain),
            "settling_rate": self.settling_rate,
            "separation": self.separation,
        }
        if config is not None:
            payload["min_separation"] = self.min_separation(config)
            payload["error_bound"] = self.error_bound(
                self.separation, config)
            payload["certified"] = self.certified_at(
                self.separation, config)
        return payload

    def render(self, config: CertifyConfig | None = None) -> str:
        lines = [
            f"certificate {self.module} [{self.kind}]",
            f"  ISS gain            {float(self.gain):.4g} "
            f"(= {_fraction_str(self.gain)})",
            f"  state gain          {float(self.state_gain):.4g}",
            f"  contraction         {float(self.contraction):.4g} "
            f"over {self.horizon} cycle(s), "
            f"transient {float(self.transient):.4g}",
            f"  disturbance gain    {float(self.disturbance_gain):.4g}",
            f"  settling rate       {self.settling_rate:.4g} /time",
            f"  separation          {self.separation:.4g}",
        ]
        if config is not None:
            lines.append(
                f"  min separation      "
                f"{self.min_separation(config):.4g} "
                f"(error bound {self.error_bound(self.separation, config):.4g}"
                f" <= margin {config.noise_margin:g}: "
                f"{'yes' if self.certified_at(self.separation, config) else 'NO'})")
        return "\n".join(lines)
