"""Static composition certificates (ISS-style error propagation).

Public surface:

- :class:`~repro.certify.certificate.Certificate` /
  :class:`~repro.certify.certificate.CertifyConfig` -- the data model;
- :func:`~repro.certify.derive.certificate_for` -- derive a
  certificate for a design, circuit or network from structure alone;
- :func:`~repro.certify.compose.certify_composition` -- small-gain
  checked composition (used by ``cascade(..., certify=True)``);
- :func:`~repro.certify.soundness.certified_margin_campaign` --
  dynamic falsification harness for the static bounds;
- ``python -m repro certify`` -- the CLI front-end.

See ``docs/certify.md`` for the certified claim and its validation.
"""

from repro.certify.certificate import (Certificate, CertifyConfig,
                                       DEFAULT_NOISE_MARGIN,
                                       DEFAULT_RESIDUAL_COEFFICIENT,
                                       DEFAULT_SIGNAL_SCALE)
from repro.certify.compose import (cascade_certificates,
                                   certify_composition,
                                   compose_certificates,
                                   parallel_certificates)
from repro.certify.derive import (certificate_for, design_certificate,
                                  network_certificate)
from repro.certify.soundness import (certified_margin_campaign,
                                     circuit_certificate,
                                     margin_consistency)

__all__ = [
    "Certificate",
    "CertifyConfig",
    "DEFAULT_NOISE_MARGIN",
    "DEFAULT_RESIDUAL_COEFFICIENT",
    "DEFAULT_SIGNAL_SCALE",
    "cascade_certificates",
    "certificate_for",
    "certified_margin_campaign",
    "certify_composition",
    "circuit_certificate",
    "compose_certificates",
    "design_certificate",
    "margin_consistency",
    "network_certificate",
    "parallel_certificates",
]
