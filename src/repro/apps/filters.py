"""DSP applications: the paper's worked examples as design builders.

Each builder returns a :class:`~repro.core.dfg.SignalFlowGraph` ready for
synthesis, plus convenience runners that stream samples through a
:class:`~repro.core.machine.SynchronousMachine` and compare against the
exact discrete-time reference.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.core.dfg import SignalFlowGraph
from repro.core.machine import MachineRun, SynchronousMachine
from repro.core.phases import rational_gain
from repro.errors import SynthesisError


def moving_average(n_taps: int = 2, name: str | None = None
                   ) -> SignalFlowGraph:
    """``y[n] = (x[n] + x[n-1] + ... + x[n-(N-1)]) / N``.

    The paper's flagship example (the two-tap case in the DAC paper, the
    general case in the journal extension).
    """
    if n_taps < 1:
        raise SynthesisError("moving average needs at least one tap")
    sfg = SignalFlowGraph(name or f"moving_average_{n_taps}")
    x = sfg.input("x")
    taps = [x]
    previous = x
    for i in range(1, n_taps):
        previous = sfg.delay(f"d{i}", source=previous)
        taps.append(previous)
    weight = Fraction(1, n_taps)
    scaled = [sfg.gain(weight, tap) for tap in taps]
    output = scaled[0] if len(scaled) == 1 else sfg.add(*scaled)
    sfg.output("y", output)
    return sfg


def fir(coefficients, name: str | None = None) -> SignalFlowGraph:
    """General FIR filter ``y[n] = sum(c_i x[n-i])``.

    Coefficients are snapped to exact rationals; negative taps produce a
    signed (dual-rail) design.
    """
    coefficients = [rational_gain(c) for c in coefficients]
    if not coefficients:
        raise SynthesisError("FIR needs at least one coefficient")
    sfg = SignalFlowGraph(name or f"fir_{len(coefficients)}")
    x = sfg.input("x")
    taps = [x]
    previous = x
    for i in range(1, len(coefficients)):
        previous = sfg.delay(f"d{i}", source=previous)
        taps.append(previous)
    terms = [sfg.gain(c, tap) for c, tap in zip(coefficients, taps)
             if c != 0]
    if not terms:
        raise SynthesisError("all FIR coefficients are zero")
    output = terms[0] if len(terms) == 1 else sfg.add(*terms)
    sfg.output("y", output)
    return sfg


def iir_first_order(feed: Fraction | float = Fraction(1, 2),
                    feedback: Fraction | float = Fraction(1, 2),
                    name: str = "iir1") -> SignalFlowGraph:
    """``y[n] = feed * x[n] + feedback * y[n-1]`` (low-pass for
    ``0 < feedback < 1``)."""
    feed = rational_gain(feed)
    feedback = rational_gain(feedback)
    if abs(feedback) >= 1:
        raise SynthesisError("|feedback| must be < 1 for stability")
    sfg = SignalFlowGraph(name)
    x = sfg.input("x")
    state = sfg.delay("s")
    y = sfg.add(sfg.gain(feed, x), sfg.gain(feedback, state))
    sfg.output("y", y)
    sfg.connect(y, state)
    return sfg


def biquad(b0, b1, b2, a1, a2, name: str = "biquad") -> SignalFlowGraph:
    """Direct-form-I biquad:
    ``y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]``.
    """
    b0, b1, b2 = (rational_gain(v) for v in (b0, b1, b2))
    a1, a2 = (rational_gain(v) for v in (a1, a2))
    sfg = SignalFlowGraph(name)
    x = sfg.input("x")
    d1 = sfg.delay("d1", source=x)
    d2 = sfg.delay("d2", source=d1)
    y1 = sfg.delay("y1")
    y2 = sfg.delay("y2", source=y1)
    terms = []
    for coeff, node in ((b0, x), (b1, d1), (b2, d2),
                        (-a1, y1), (-a2, y2)):
        if coeff != 0:
            terms.append(sfg.gain(coeff, node))
    if len(terms) < 2:
        raise SynthesisError("biquad needs at least two nonzero terms")
    y = sfg.add(*terms)
    sfg.output("y", y)
    sfg.connect(y, y1)
    return sfg


def leaky_integrator(retention: Fraction | float = Fraction(3, 4),
                     name: str = "leaky") -> SignalFlowGraph:
    """``y[n] = x[n] + retention * y[n-1]`` -- an accumulator whose
    memory decays geometrically (retention < 1 keeps it bounded)."""
    retention = rational_gain(retention)
    if not 0 < retention < 1:
        raise SynthesisError("retention must be in (0, 1)")
    sfg = SignalFlowGraph(name)
    x = sfg.input("x")
    state = sfg.delay("s")
    y = sfg.add(x, sfg.gain(retention, state))
    sfg.output("y", y)
    sfg.connect(y, state)
    return sfg


def dc_blocker(pole: Fraction | float = Fraction(3, 4),
               name: str = "dc_blocker") -> SignalFlowGraph:
    """``y[n] = x[n] - x[n-1] + pole * y[n-1]`` -- removes the constant
    (DC) component of a stream; a signed design by construction."""
    pole = rational_gain(pole)
    if not 0 < pole < 1:
        raise SynthesisError("pole must be in (0, 1)")
    sfg = SignalFlowGraph(name)
    x = sfg.input("x")
    previous = sfg.delay("xd", source=x)
    state = sfg.delay("yd")
    y = sfg.add(sfg.subtract(x, previous), sfg.gain(pole, state))
    sfg.output("y", y)
    sfg.connect(y, state)
    return sfg


def comb(delay_taps: int = 2, gain: Fraction | float = Fraction(1, 2),
         name: str | None = None) -> SignalFlowGraph:
    """Feed-forward comb ``y[n] = x[n] + gain * x[n-D]`` (echo)."""
    if delay_taps < 1:
        raise SynthesisError("comb needs at least one delay tap")
    gain = rational_gain(gain)
    sfg = SignalFlowGraph(name or f"comb_{delay_taps}")
    x = sfg.input("x")
    node = x
    for i in range(delay_taps):
        node = sfg.delay(f"d{i}", source=node)
    sfg.output("y", sfg.add(x, sfg.gain(gain, node)))
    return sfg


def run_filter(sfg: SignalFlowGraph, samples, machine_kwargs=None,
               run_kwargs=None) -> MachineRun:
    """Synthesize and stream samples through a filter design."""
    machine = SynchronousMachine(sfg, **(machine_kwargs or {}))
    return machine.run({"x": list(samples)}, **(run_kwargs or {}))


def impulse_response(sfg: SignalFlowGraph, n_samples: int = 8,
                     amplitude: float = 16.0,
                     machine_kwargs=None) -> MachineRun:
    """Measured impulse response of a synthesized filter."""
    samples = [amplitude] + [0.0] * (n_samples - 1)
    return run_filter(sfg, samples, machine_kwargs)


def step_response(sfg: SignalFlowGraph, n_samples: int = 8,
                  amplitude: float = 10.0,
                  machine_kwargs=None) -> MachineRun:
    """Measured step response of a synthesized filter."""
    samples = [amplitude] * n_samples
    return run_filter(sfg, samples, machine_kwargs)


def tone(n_samples: int, period: int, amplitude: float = 10.0,
         offset: float | None = None) -> list[float]:
    """A sampled raised sinusoid (non-negative, for unsigned designs)."""
    if offset is None:
        offset = amplitude
    n = np.arange(n_samples)
    return list(offset + amplitude * np.sin(2 * np.pi * n / period))
