"""Worked DSP applications built on the synchronous machinery."""

from repro.apps.filters import (biquad, comb, dc_blocker, fir,
                                iir_first_order, impulse_response,
                                leaky_integrator, moving_average,
                                run_filter, step_response, tone)

__all__ = [
    "biquad",
    "comb",
    "dc_blocker",
    "fir",
    "iir_first_order",
    "leaky_integrator",
    "impulse_response",
    "moving_average",
    "run_filter",
    "step_response",
    "tone",
]
