"""Cross-engine conformance harness.

The paper's validation rests entirely on simulation, so the simulators
*are* the ground truth -- and a silent readout or sampling bug corrupts
every result built on top of them.  This package turns such bugs into
hard failures by cross-checking every engine against every other engine
and against algebraic invariants of mass-action kinetics:

- :mod:`repro.conformance.generator` -- a seeded, constrained random
  generator of lint-clean CRNs (plus the built-in clock/counter/machine
  circuits) whose sizes scale with a budget knob;
- :mod:`repro.conformance.metamorphic` -- metamorphic invariants applied
  to any engine: species-permutation equivariance, rate/time rescaling
  covariance, ``t_start`` shift invariance, conservation-law
  preservation (the lint left-null-space machinery), duplicate-reaction
  merge equivalence, and Trajectory round-trip contracts
  (``concat``/``window``/``resampled``/``at``);
- :mod:`repro.conformance.oracles` -- differential oracles: scipy LSODA
  vs BDF vs the in-house RK45 at tight tolerances, SSA ensemble means vs
  the ODE limit under CLT acceptance bands, and tau-leaping vs exact SSA
  on matched seed lists (ensembles fanned over
  :class:`~repro.crn.simulation.sweep.ParallelSweepRunner`);
- :mod:`repro.conformance.shrink` -- a greedy shrinker that reduces any
  failing network to a minimal ``.crn`` reproducer under
  ``tests/conformance/corpus/``, which tier-1 replays forever after;
- :mod:`repro.conformance.runner` -- the orchestrator behind
  ``python -m repro conformance`` and its deterministic JSON report.

See ``docs/conformance.md`` for the invariant catalogue and the corpus
workflow.
"""

from repro.conformance.generator import (BUDGETS, GeneratorBudget,
                                         generate_targets, random_network)
from repro.conformance.metamorphic import (CheckResult, ENGINE_SPECS,
                                           EngineSpec)
from repro.conformance.runner import (ConformanceReport, run_conformance,
                                      replay_network)
from repro.conformance.shrink import shrink_network, write_reproducer

__all__ = [
    "BUDGETS",
    "CheckResult",
    "ConformanceReport",
    "ENGINE_SPECS",
    "EngineSpec",
    "GeneratorBudget",
    "generate_targets",
    "random_network",
    "replay_network",
    "run_conformance",
    "shrink_network",
    "write_reproducer",
]
