"""Greedy shrinking of failing conformance targets.

When a check fails on a generated network, the raw reproducer is noise:
most of its reactions and species are irrelevant.  :func:`shrink_network`
greedily minimises the network while a caller-supplied predicate keeps
reporting "still failing":

1. drop reactions, one at a time, largest index first;
2. drop species that no remaining reaction touches;
3. zero initial quantities, then halve the survivors toward 1.

Each accepted step restarts the pass, so the result is 1-minimal: no
single reaction, stranded species or initial quantity can be removed
without losing the failure.  :func:`write_reproducer` serialises the
result through :meth:`Network.to_text` into the replay corpus
(``tests/conformance/corpus/``), which tier-1 replays forever after.
"""

from __future__ import annotations

import re
from collections.abc import Callable
from pathlib import Path

from repro.crn.network import Network

#: Shrink-step ceiling; greedy descent on generated networks converges
#: in far fewer, the cap guards against a flapping predicate.
_MAX_STEPS = 500


def _rebuild(network: Network, *, keep_reactions: list[int],
             initial: dict[str, float]) -> Network:
    """A fresh network with a subset of reactions/initials.

    Species that no kept reaction references and no kept initial feeds
    are dropped; the survivors keep their registration order (and with
    it the state-vector layout).
    """
    kept = [network.reactions[j] for j in keep_reactions]
    used = {species.name for reaction in kept
            for species in reaction.species}
    used |= {name for name, value in initial.items() if value > 0.0}
    rebuilt = Network(network.name)
    for species in network.species:
        if species.name in used:
            rebuilt.add_species(species)
    for reaction in kept:
        rebuilt.add_reaction(reaction)
    for name, value in initial.items():
        if value > 0.0 and name in used:
            rebuilt.set_initial(name, value)
    return rebuilt


def _still_fails(predicate: Callable[[Network], bool],
                 candidate: Network) -> bool:
    """Whether the candidate still reproduces the failure.

    A candidate that cannot even be evaluated (no reactions, a
    predicate crash on degenerate input) is *not* a reproducer.
    """
    if not candidate.reactions:
        return False
    try:
        return bool(predicate(candidate))
    except Exception:  # noqa: BLE001 -- degenerate candidate, reject
        return False


def shrink_network(network: Network,
                   predicate: Callable[[Network], bool]) -> Network:
    """Greedily minimise ``network`` while ``predicate`` holds.

    ``predicate(candidate) -> True`` must mean "this candidate still
    exhibits the original failure".  Returns the smallest network found
    (possibly the input itself if nothing could be removed).
    """
    current = network
    initial = dict(current.initial)
    steps = 0
    progress = True
    while progress and steps < _MAX_STEPS:
        progress = False
        # Pass 1: drop reactions, largest index first so indices of
        # not-yet-tried reactions stay valid after an accepted removal.
        for j in range(current.n_reactions - 1, -1, -1):
            keep = [i for i in range(current.n_reactions) if i != j]
            candidate = _rebuild(current, keep_reactions=keep,
                                 initial=initial)
            steps += 1
            if _still_fails(predicate, candidate):
                current = candidate
                initial = dict(current.initial)
                progress = True
        # Pass 2: zero initial quantities one at a time.
        for name in sorted(initial):
            if initial[name] <= 0.0:
                continue
            trial = dict(initial)
            trial[name] = 0.0
            candidate = _rebuild(
                current,
                keep_reactions=list(range(current.n_reactions)),
                initial=trial)
            steps += 1
            if _still_fails(predicate, candidate):
                current = candidate
                initial = dict(current.initial)
                progress = True
        # Pass 3: halve surviving initial quantities toward 1.
        for name in sorted(initial):
            value = initial[name]
            while value > 1.0 and steps < _MAX_STEPS:
                trial = dict(initial)
                trial[name] = float(max(1.0, round(value / 2.0)))
                candidate = _rebuild(
                    current,
                    keep_reactions=list(range(current.n_reactions)),
                    initial=trial)
                steps += 1
                if not _still_fails(predicate, candidate):
                    break
                current = candidate
                initial = dict(current.initial)
                value = initial[name]
                progress = True
    return current


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")


def write_reproducer(network: Network, check: str, detail: str,
                     directory: str | Path) -> Path:
    """Serialise a shrunk failing network into the replay corpus.

    The file name encodes the failing check; a header comment records
    what failed so a reader does not need the original report.  Returns
    the written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"shrunk-{_slug(check)}.crn"
    header = [
        f"# shrunk conformance reproducer for check: {check}",
        f"# failure: {detail}" if detail else "# failure: (no detail)",
        "# replayed forever by tests/conformance/test_corpus_replay.py;",
        "# reproduce with: python -m repro conformance --replay "
        + path.name,
    ]
    path.write_text("\n".join(header) + "\n" + network.to_text(),
                    encoding="utf-8")
    return path
