"""Metamorphic invariants applied to any simulation engine.

Each check simulates a network twice -- once plainly, once through a
transformation with a known algebraic consequence -- and fails loudly
when the consequence does not hold:

``meta.permutation``
    Permuting the species registration order permutes state columns and
    nothing else.  Exact for the stochastic engines on matched seeds
    (the reaction order, and with it the draw sequence, is untouched);
    solver-tolerance for the ODE engine.
``meta.rate-rescale``
    Scaling every rate constant by ``L`` compresses time by ``L``:
    ``x'(t) = x(L t)``.  ``L`` is a power of two, so for the stochastic
    engines the rescaling commutes with float rounding and the check is
    bitwise on matched seeds.
``meta.t-shift``
    Mass-action dynamics are time-homogeneous: integrating over
    ``[D, D+T]`` relabels the grid of ``[0, T]``.  Grid-boundary
    rounding can reassign individual samples in the stochastic engines,
    so those allow a small mismatched-row fraction; a wholesale
    ``t_start`` mishandling still fails by a mile.
``meta.conservation``
    Every left-null-space vector of the stoichiometry matrix (the same
    machinery the lint conservation rule uses) is constant along any
    trajectory, whatever the engine.
``meta.duplicate-merge``
    Splitting one reaction into two copies at half the rate constant is
    kinetically invisible to the deterministic engine.
``traj.roundtrip`` / ``traj.horizon`` / ``traj.window`` /
``sampling.guard``
    Contract checks on the shared :class:`Trajectory` container and the
    shared selection draw: ``resampled`` is idempotent on its own grid,
    ``window``-split ``concat`` reassembles the original, reads outside
    the simulated horizon must raise (never silently clamp), a window
    falling between two samples interpolates its boundaries instead of
    crashing, and the all-zero-propensity selection draw must raise
    instead of silently firing the last reaction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation import SimulationOptions, simulate
from repro.crn.simulation.result import Trajectory
from repro.crn.simulation.sampling import select_reaction
from repro.errors import ReproError, SimulationError

#: Power-of-two rate-rescaling factor: scaling by it is exact in
#: floating point, so the stochastic engines must match bitwise.
RESCALE_FACTOR = 4.0

#: Power-of-two ``t_start`` shift used by ``meta.t-shift``.
SHIFT = 8.0

#: Sample-grid size for metamorphic runs (a 2^k + 1 grid over a dyadic
#: span keeps every sample time exactly representable).
N_SAMPLES = 33

#: Acceptance for solver-tolerance (ODE) comparisons: well above
#: LSODA's accumulated error at the default tolerances, far below any
#: indexing or unit mistake.
ODE_RTOL = 1e-3
ODE_ATOL = 1e-6

#: Mismatched-row allowance for stochastic grid-relabeling checks.
SHIFT_ROW_TOLERANCE = 0.05


@dataclass(frozen=True)
class EngineSpec:
    """One engine configuration under conformance test.

    ``exact`` marks engines whose metamorphic comparisons must be
    bitwise (stochastic engines on matched seeds); the rest are compared
    at solver tolerance.  ``backend`` selects the facade execution
    backend, so the structure-of-arrays SSA engine runs the same
    battery as the reference it must match bitwise.
    """

    name: str
    method: str
    solver: str = "LSODA"
    exact: bool = False
    backend: str = "reference"

    def run(self, network: Network, t_final: float,
            scheme: RateScheme | None, *, seed: int | None = None,
            rates: np.ndarray | None = None, t_start: float = 0.0,
            n_samples: int = N_SAMPLES, rtol: float = 1e-7,
            atol: float = 1e-9, max_events: int | None = 4_000_000
            ) -> Trajectory:
        options = SimulationOptions(
            solver=self.solver, seed=seed, rates=rates, t_start=t_start,
            n_samples=n_samples, rtol=rtol, atol=atol,
            max_events=max_events, backend=self.backend)
        return simulate(network, t_final, self.method, scheme=scheme,
                        options=options)


ENGINE_SPECS: dict[str, EngineSpec] = {
    "ode": EngineSpec("ode", "ode", solver="LSODA"),
    "ode-bdf": EngineSpec("ode-bdf", "ode", solver="BDF"),
    "rk45": EngineSpec("rk45", "ode", solver="internal-rk45"),
    "ssa": EngineSpec("ssa", "ssa", exact=True),
    "ssa-batch": EngineSpec("ssa-batch", "ssa", exact=True,
                            backend="batch"),
    "tau": EngineSpec("tau", "tau", exact=True),
}


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one (check, target, engine) cell."""

    check: str
    target: str
    engine: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "fail"

    def to_dict(self) -> dict:
        return {"check": self.check, "target": self.target,
                "engine": self.engine, "status": self.status,
                "detail": self.detail}


def _result(check: str, target: str, engine: str,
            detail: str | None) -> CheckResult:
    status = "pass" if detail is None else "fail"
    return CheckResult(check, target, engine, status, detail or "")


def _guarded(check: str, target: str, engine: str, fn) -> CheckResult:
    """Run a check body, folding engine blow-ups into failures.

    An unexpected exception *is* a conformance failure (the engines
    must at minimum complete on lint-clean generated networks), but a
    deliberate ``skip`` sentinel passes through.
    """
    try:
        return _result(check, target, engine, fn())
    except _Skip as skip:
        return CheckResult(check, target, engine, "skip", str(skip))
    except ReproError as exc:
        return _result(check, target, engine,
                       f"engine raised {type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 -- any crash is a finding
        return _result(check, target, engine,
                       f"unexpected {type(exc).__name__}: {exc}")


class _Skip(Exception):
    """Raised inside a check body to mark the cell as skipped."""


def compare_states(a: np.ndarray, b: np.ndarray, *, exact: bool,
                   max_mismatch_fraction: float = 0.0) -> str | None:
    """Compare two aligned state arrays; ``None`` when they agree."""
    if a.shape != b.shape:
        return f"shape mismatch: {a.shape} vs {b.shape}"
    if exact:
        rows = int(np.sum(np.any(a != b, axis=1)))
        allowed = int(max_mismatch_fraction * a.shape[0])
        if rows > allowed:
            return (f"{rows}/{a.shape[0]} sample rows differ "
                    f"(allowed {allowed})")
        return None
    scale = max(1.0, float(np.max(np.abs(a))))
    deviation = float(np.max(np.abs(a - b)))
    tolerance = ODE_ATOL + ODE_RTOL * scale
    if deviation > tolerance:
        return (f"max deviation {deviation:.3e} exceeds tolerance "
                f"{tolerance:.3e}")
    return None


# -- network transformations -------------------------------------------------

def permute_species(network: Network,
                    permutation: np.ndarray) -> Network:
    """The same network with species registered in permuted order."""
    permuted = Network(network.name)
    species = network.species
    for index in permutation:
        permuted.add_species(species[int(index)])
    for reaction in network.reactions:
        permuted.add_reaction(reaction)
    for name, value in network.initial.items():
        permuted.set_initial(name, value)
    return permuted


def duplicate_reaction(network: Network, index: int) -> Network:
    """A copy of ``network`` with reaction ``index`` appended again.

    Paired with a rate vector that halves the duplicated reaction's
    constant, the kinetics are identical.
    """
    doubled = network.copy()
    doubled.add_reaction(network.reactions[index])
    return doubled


# -- metamorphic checks ------------------------------------------------------

def check_permutation(target, engine: EngineSpec,
                      seed: int) -> CheckResult:
    def body():
        network = target.network
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(network.n_species)
        permuted = permute_species(network, permutation)
        base = engine.run(network, target.t_final, target.scheme,
                          seed=seed)
        other = engine.run(permuted, target.t_final, target.scheme,
                           seed=seed)
        columns = [other.species_index(name) for name in base.names]
        return compare_states(base.states, other.states[:, columns],
                              exact=engine.exact)
    return _guarded("meta.permutation", target.name, engine.name, body)


def check_rate_rescale(target, engine: EngineSpec,
                       seed: int) -> CheckResult:
    def body():
        network = target.network
        rates = network.rate_vector(target.scheme)
        base = engine.run(network, target.t_final, None, seed=seed,
                          rates=rates)
        fast = engine.run(network, target.t_final / RESCALE_FACTOR,
                          None, seed=seed, rates=rates * RESCALE_FACTOR)
        return compare_states(base.states, fast.states,
                              exact=engine.exact)
    return _guarded("meta.rate-rescale", target.name, engine.name, body)


def check_t_shift(target, engine: EngineSpec, seed: int) -> CheckResult:
    def body():
        network = target.network
        base = engine.run(network, target.t_final, target.scheme,
                          seed=seed)
        shifted = engine.run(network, SHIFT + target.t_final,
                             target.scheme, seed=seed, t_start=SHIFT)
        mismatch = SHIFT_ROW_TOLERANCE if engine.exact else 0.0
        return compare_states(base.states, shifted.states,
                              exact=engine.exact,
                              max_mismatch_fraction=mismatch)
    return _guarded("meta.t-shift", target.name, engine.name, body)


def check_conservation(target, engine: EngineSpec,
                       seed: int) -> CheckResult:
    def body():
        network = target.network
        basis = network.conservation_laws()
        if basis.size == 0:
            raise _Skip("network has no conservation laws")
        trajectory = engine.run(network, target.t_final, target.scheme,
                                seed=seed)
        totals = trajectory.states @ basis.T     # (n_samples, n_laws)
        drift = np.max(np.abs(totals - totals[0]), axis=0)
        scale = np.maximum(1.0, np.abs(totals[0]))
        rtol = 1e-8 if engine.exact else 1e-5
        worst = int(np.argmax(drift / scale))
        if drift[worst] > rtol * scale[worst]:
            return (f"invariant {worst} drifts by {drift[worst]:.3e} "
                    f"(scale {scale[worst]:.3g}, rtol {rtol:g})")
        return None
    return _guarded("meta.conservation", target.name, engine.name, body)


def check_duplicate_merge(target, engine: EngineSpec,
                          seed: int) -> CheckResult:
    def body():
        if engine.exact:
            raise _Skip("pathwise stochastic comparison undefined "
                        "for a split reaction")
        network = target.network
        rng = np.random.default_rng(seed)
        index = int(rng.integers(network.n_reactions))
        rates = network.rate_vector(target.scheme)
        doubled = duplicate_reaction(network, index)
        split = rates.copy()
        split[index] = rates[index] / 2.0
        split = np.append(split, rates[index] / 2.0)
        base = engine.run(network, target.t_final, None, rates=rates)
        merged = engine.run(doubled, target.t_final, None, rates=split)
        return compare_states(base.states, merged.states, exact=False)
    return _guarded("meta.duplicate-merge", target.name, engine.name,
                    body)


# -- trajectory / sampling contract checks -----------------------------------

def check_traj_roundtrip(target, engine: EngineSpec,
                         seed: int) -> CheckResult:
    def body():
        trajectory = engine.run(target.network, target.t_final,
                                target.scheme, seed=seed)
        times = trajectory.times
        resampled = trajectory.resampled(times)
        if not np.array_equal(resampled.states, trajectory.states):
            return "resampled() on the trajectory's own grid is not " \
                   "the identity"
        again = resampled.resampled(times)
        if not np.array_equal(again.states, resampled.states):
            return "resampled() is not idempotent on its own grid"
        middle = float(times[len(times) // 2])
        head = trajectory.window(float(times[0]), middle)
        tail = trajectory.window(middle, float(times[-1]))
        joined = head.concat(tail)
        if not (np.array_equal(joined.times, times)
                and np.array_equal(joined.states, trajectory.states)):
            return "window-split concat does not reassemble the " \
                   "original trajectory"
        return None
    return _guarded("traj.roundtrip", target.name, engine.name, body)


def check_traj_horizon(target, engine: EngineSpec,
                       seed: int) -> CheckResult:
    def body():
        trajectory = engine.run(target.network, target.t_final,
                                target.scheme, seed=seed)
        name = trajectory.names[0]
        span = trajectory.t_final - float(trajectory.times[0])
        beyond = trajectory.t_final + span + 1.0
        before = float(trajectory.times[0]) - span - 1.0
        for t, side in ((beyond, "past"), (before, "before")):
            try:
                value = trajectory.at(t, name)
            except SimulationError:
                continue
            return (f"at({t:g}) {side} the simulated horizon returned "
                    f"{value:g} instead of raising SimulationError")
        try:
            trajectory.resampled(np.linspace(0.0, beyond, 7))
        except SimulationError:
            return None
        return ("resampled() past the simulated horizon returned "
                "clamped endpoint values instead of raising "
                "SimulationError")
    return _guarded("traj.horizon", target.name, engine.name, body)


def check_traj_window(target, engine: EngineSpec,
                      seed: int) -> CheckResult:
    def body():
        trajectory = engine.run(target.network, target.t_final,
                                target.scheme, seed=seed)
        times = trajectory.times
        gaps = np.diff(times)
        k = int(np.argmax(gaps))
        lo = float(times[k] + 0.25 * gaps[k])
        hi = float(times[k] + 0.75 * gaps[k])
        try:
            window = trajectory.window(lo, hi)
            if len(window) == 0:
                return (f"window({lo:g}, {hi:g}) between two samples "
                        f"is empty instead of interpolating its "
                        f"boundaries")
            t_final = window.t_final
            window.final()
        except SimulationError as exc:
            return (f"window({lo:g}, {hi:g}) between two samples "
                    f"raised {exc}")
        except IndexError as exc:
            return (f"empty window({lo:g}, {hi:g}) crashed with a raw "
                    f"IndexError: {exc}")
        if not (lo - 1e-9 <= t_final <= hi + 1e-9):
            return (f"window({lo:g}, {hi:g}) has t_final {t_final:g} "
                    f"outside the window")
        lower = np.minimum(trajectory.states[k],
                           trajectory.states[k + 1]) - 1e-9
        upper = np.maximum(trajectory.states[k],
                           trajectory.states[k + 1]) + 1e-9
        inside = np.all((window.states >= lower)
                        & (window.states <= upper))
        if not inside:
            return "interpolated window samples leave the bracketing " \
                   "sample envelope"
        return None
    return _guarded("traj.window", target.name, engine.name, body)


def check_sampling_guard(target, engine: EngineSpec,
                         seed: int) -> CheckResult:
    def body():
        zeros = np.zeros(target.network.n_reactions)
        try:
            index = select_reaction(zeros, 0.5)
        except SimulationError:
            return None
        return (f"select_reaction() on an all-zero propensity vector "
                f"silently fired reaction {index} instead of raising "
                f"SimulationError")
    return _guarded("sampling.guard", target.name, engine.name, body)


def check_canonical_form(target, engine: EngineSpec,
                         seed: int) -> CheckResult:
    """The canonical serialisation honours its cache-key contract.

    Engine-independent (static) check: permuting species registration
    *and* reaction declaration order must not move
    :meth:`~repro.crn.network.Network.canonical_hash` (same chemistry,
    same key); appending an exact duplicate reaction *must* move it
    (doubled propensity is different chemistry); and the canonical
    dict must round-trip through ``from_canonical_dict`` unchanged --
    the three properties the serving layer's content-addressed cache
    rides on.
    """
    def body():
        network = target.network
        rng = np.random.default_rng(seed)
        shuffled = permute_species(
            network, rng.permutation(network.n_species))
        reordered = Network(network.name)
        for species in shuffled.species:
            reordered.add_species(species)
        for index in rng.permutation(network.n_reactions):
            reordered.add_reaction(network.reactions[int(index)])
        for name, value in network.initial.items():
            reordered.set_initial(name, value)
        base = network.canonical_hash()
        if reordered.canonical_hash() != base:
            return ("species/reaction permutation moved the canonical "
                    "hash: permutation-equivalent networks would miss "
                    "the result cache")
        doubled = duplicate_reaction(
            network, int(rng.integers(network.n_reactions)))
        if doubled.canonical_hash() == base:
            return ("appending an exact duplicate reaction did not "
                    "move the canonical hash: kinetically different "
                    "networks would share a cache entry")
        payload = network.to_canonical_dict()
        rebuilt = Network.from_canonical_dict(payload)
        if rebuilt.to_canonical_dict() != payload:
            return "canonical dict does not round-trip to itself"
        if rebuilt.canonical_hash() != base:
            return "round-trip through the canonical dict moved the hash"
        return None
    return _guarded("meta.canonical-form", target.name, engine.name,
                    body)


#: The metamorphic battery, in report order.  Each entry runs once per
#: (target, engine) pair the runner deems applicable;
#: ``check_duplicate_merge``, ``check_sampling_guard`` and
#: ``check_canonical_form`` are engine-independent and run once per
#: target (see the runner's special-casing).
METAMORPHIC_CHECKS = (
    check_permutation,
    check_rate_rescale,
    check_t_shift,
    check_conservation,
    check_duplicate_merge,
    check_traj_roundtrip,
    check_traj_horizon,
    check_traj_window,
    check_sampling_guard,
    check_canonical_form,
)
