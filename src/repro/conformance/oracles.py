"""Differential oracles: engines checking each other.

Unlike the metamorphic invariants (one engine against algebra), these
run *different* engines on the same network and require statistical or
numerical agreement:

``diff.ode-solvers``
    scipy LSODA vs BDF vs the in-house Dormand-Prince RK45, all at
    tight tolerances, must agree on the full sampled trajectory.  The
    explicit RK45 is skipped for stiff targets where it would crawl.
``diff.ssa-vs-ode``
    In the large-copy-number limit the SSA ensemble mean converges to
    the deterministic solution.  Initial counts are scaled by
    :data:`VOLUME` (and the simulation volume with them), an ensemble
    of seeded realisations is fanned over
    :class:`~repro.crn.simulation.sweep.ParallelSweepRunner`, and the
    rescaled mean final state must sit inside a CLT acceptance band
    around the ODE final state (plus an O(1/V) discreteness allowance).
``diff.tau-vs-ssa``
    Tau-leaping is an approximation of exact SSA: ensemble mean final
    states on matched seed lists must agree within the combined CLT
    bands plus a leaping-bias allowance.
``diff.batch-vs-reference``
    The structure-of-arrays SSA backend is not an approximation at all:
    on matched per-trial seeds every sampled trajectory (and event
    count) must equal the reference engine's **bitwise** -- the
    strongest oracle in the battery, and the contract that keeps seeded
    corpora and cached baselines valid across backends.

Every ensemble member's seed is spawned from one root
:class:`numpy.random.SeedSequence` and reductions are payload-ordered,
so results are identical serial or parallel, whatever the worker count.
"""

from __future__ import annotations

import numpy as np

from repro.conformance.metamorphic import CheckResult, _guarded, _Skip
from repro.crn.simulation import SimulationOptions, simulate
from repro.crn.simulation.sweep import ParallelSweepRunner
from repro.errors import SimulationError

#: Copy-number scaling for the SSA-vs-ODE limit oracle.
VOLUME = 20.0

#: z-score of the CLT acceptance band (per-species, two-sided).  5
#: standard errors keeps the per-run false-positive rate negligible
#: across the whole corpus while still catching any systematic bias.
Z_BAND = 5.0

#: Event budget per ensemble member; a member exceeding it marks the
#: whole oracle cell as skipped (too expensive), never as passed.
MAX_EVENTS = 1_000_000

#: Tight tolerances for the cross-solver oracle.
TIGHT_RTOL = 1e-9
TIGHT_ATOL = 1e-11

#: Cross-solver acceptance: relative to the trajectory's magnitude.
SOLVER_RTOL = 1e-5
SOLVER_ATOL = 1e-8


def _final_state_worker(payload: tuple) -> np.ndarray:
    """One ensemble member's final state vector (process-pool worker)."""
    network, method, rates, volume, seed, t_final, initial = payload
    options = SimulationOptions(
        seed=np.random.default_rng(seed), rates=rates, volume=volume,
        initial=initial, n_samples=2, max_events=MAX_EVENTS)
    trajectory = simulate(network, t_final, method, scheme=None,
                          options=options)
    return trajectory.states[-1]


def _ensemble_finals(network, method: str, rates: np.ndarray,
                     volume: float, seeds, t_final: float, initial,
                     n_workers: int | None) -> np.ndarray:
    """Stacked final states over one seeded ensemble (payload order)."""
    payloads = [(network, method, rates, volume, seed, t_final, initial)
                for seed in seeds]
    runner = ParallelSweepRunner(n_workers)
    return np.vstack(runner.map(_final_state_worker, payloads))


def check_batch_vs_reference(target, seed: int,
                             n_workers: int | None = None,
                             n_runs: int = 8) -> CheckResult:
    """Batch-backend realisations must match the reference bitwise."""
    def body():
        if not target.stochastic:
            raise _Skip("stochastic engines disabled for this target")
        from repro.crn.simulation import BatchStochasticSimulator

        network = target.network
        t_final = min(target.t_final, 1.0)
        rates = network.rate_vector(target.scheme)
        seeds = np.random.SeedSequence(seed).spawn(n_runs)
        try:
            reference = []
            for member in seeds:
                options = SimulationOptions(
                    seed=np.random.default_rng(member), rates=rates,
                    n_samples=17, max_events=MAX_EVENTS)
                reference.append(simulate(network, t_final, "ssa",
                                          scheme=None, options=options))
            ensemble = BatchStochasticSimulator(
                network, rates=rates).simulate_ensemble(
                    t_final, seeds=list(seeds), n_samples=17,
                    max_events=MAX_EVENTS)
        except SimulationError as exc:
            raise _Skip(f"ensemble over event budget: {exc}") from exc
        for i, run in enumerate(reference):
            batch_run = ensemble.trial(i)
            if not np.array_equal(run.states, batch_run.states):
                row = int(np.argmax(np.any(
                    run.states != batch_run.states, axis=1)))
                return (f"trial {i}: batch states diverge from the "
                        f"reference engine at sample {row} "
                        f"(t={run.times[row]:g}); seeded realisations "
                        f"must match bitwise")
            if run.meta["events"] != batch_run.meta["events"]:
                return (f"trial {i}: batch fired "
                        f"{batch_run.meta['events']} events vs "
                        f"reference {run.meta['events']}")
        return None
    return _guarded("diff.batch-vs-reference", target.name, "ssa-batch",
                    body)


def check_ode_solvers(target, seed: int,
                      n_workers: int | None = None) -> CheckResult:
    def body():
        network = target.network
        t_final = target.t_final

        def run(solver):
            options = SimulationOptions(solver=solver, n_samples=33,
                                        rtol=TIGHT_RTOL, atol=TIGHT_ATOL)
            return simulate(network, t_final, "ode",
                            scheme=target.scheme, options=options)

        solvers = ["LSODA", "BDF"]
        if not target.stiff:
            solvers.append("internal-rk45")
        trajectories = {name: run(name) for name in solvers}
        reference = trajectories["LSODA"]
        scale = max(1.0, float(np.max(np.abs(reference.states))))
        tolerance = SOLVER_ATOL + SOLVER_RTOL * scale
        worst = None
        for name in solvers[1:]:
            deviation = float(np.max(np.abs(
                reference.states - trajectories[name].states)))
            if deviation > tolerance:
                worst = (f"LSODA vs {name}: max deviation "
                         f"{deviation:.3e} exceeds {tolerance:.3e}")
        return worst
    return _guarded("diff.ode-solvers", target.name, "ode", body)


def check_ssa_vs_ode(target, seed: int,
                     n_workers: int | None = None,
                     n_runs: int = 16) -> CheckResult:
    def body():
        if not target.stochastic:
            raise _Skip("stochastic engines disabled for this target")
        network = target.network
        t_final = min(target.t_final, 0.5)
        rates = network.rate_vector(target.scheme)
        scaled_initial = {name: value * VOLUME
                          for name, value in network.initial.items()}
        seeds = np.random.SeedSequence(seed).spawn(n_runs)
        try:
            finals = _ensemble_finals(network, "ssa", rates, VOLUME,
                                      seeds, t_final, scaled_initial,
                                      n_workers)
        except SimulationError as exc:
            raise _Skip(f"ensemble over event budget: {exc}") from exc
        mean = finals.mean(axis=0) / VOLUME
        sem = finals.std(axis=0, ddof=1) / np.sqrt(n_runs) / VOLUME
        options = SimulationOptions(n_samples=2, rates=rates)
        ode = simulate(network, t_final, "ode", scheme=None,
                       options=options).states[-1]
        scale = np.maximum(1.0, np.abs(ode))
        band = Z_BAND * sem + 0.02 * scale + 2.0 / VOLUME
        deviation = np.abs(mean - ode)
        worst = int(np.argmax(deviation - band))
        if deviation[worst] > band[worst]:
            name = network.species_names[worst]
            return (f"species {name!r}: SSA ensemble mean "
                    f"{mean[worst]:.4f} vs ODE {ode[worst]:.4f} "
                    f"outside CLT band {band[worst]:.4f} "
                    f"({n_runs} runs, volume {VOLUME:g})")
        return None
    return _guarded("diff.ssa-vs-ode", target.name, "ssa", body)


def check_tau_vs_ssa(target, seed: int,
                     n_workers: int | None = None,
                     n_runs: int = 16) -> CheckResult:
    def body():
        if not target.stochastic:
            raise _Skip("stochastic engines disabled for this target")
        network = target.network
        t_final = min(target.t_final, 1.0)
        rates = network.rate_vector(target.scheme)
        seeds = np.random.SeedSequence(seed).spawn(n_runs)
        try:
            ssa = _ensemble_finals(network, "ssa", rates, 1.0, seeds,
                                   t_final, None, n_workers)
            tau = _ensemble_finals(network, "tau", rates, 1.0, seeds,
                                   t_final, None, n_workers)
        except SimulationError as exc:
            raise _Skip(f"ensemble over event budget: {exc}") from exc
        mean_ssa = ssa.mean(axis=0)
        mean_tau = tau.mean(axis=0)
        sem = (ssa.std(axis=0, ddof=1)
               + tau.std(axis=0, ddof=1)) / np.sqrt(n_runs)
        scale = np.maximum(1.0, np.abs(mean_ssa))
        band = Z_BAND * sem + 0.05 * scale + 2.0
        deviation = np.abs(mean_tau - mean_ssa)
        worst = int(np.argmax(deviation - band))
        if deviation[worst] > band[worst]:
            name = network.species_names[worst]
            return (f"species {name!r}: tau-leaping mean "
                    f"{mean_tau[worst]:.3f} vs SSA mean "
                    f"{mean_ssa[worst]:.3f} outside band "
                    f"{band[worst]:.3f} ({n_runs} matched seeds)")
        return None
    return _guarded("diff.tau-vs-ssa", target.name, "tau", body)


#: The differential battery, in report order.
DIFFERENTIAL_CHECKS = (
    check_ode_solvers,
    check_batch_vs_reference,
    check_ssa_vs_ode,
    check_tau_vs_ssa,
)
