"""Orchestration: targets x checks -> deterministic report + corpus.

:func:`run_conformance` is the engine behind ``python -m repro
conformance``: generate the seeded target list for a budget, run the
metamorphic battery per applicable engine and the differential oracles
per target, greedily shrink every distinct failing check to a minimal
``.crn`` reproducer, and return a :class:`ConformanceReport` whose JSON
form is bit-identical across runs of the same ``(budget, seed)`` pair
(no timestamps, no wall times, payload-ordered reductions).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.conformance.generator import (BUDGETS, CONFORMANCE_SCHEME,
                                         GeneratorBudget, Target,
                                         generate_targets)
from repro.conformance.metamorphic import (ENGINE_SPECS,
                                           METAMORPHIC_CHECKS,
                                           CheckResult,
                                           check_canonical_form,
                                           check_duplicate_merge,
                                           check_sampling_guard)
from repro.conformance.oracles import (check_batch_vs_reference,
                                       check_ode_solvers,
                                       check_ssa_vs_ode,
                                       check_tau_vs_ssa)
from repro.conformance.shrink import shrink_network, write_reproducer
from repro.errors import ReproError

#: Default replay-corpus location (relative to the repo root / cwd).
DEFAULT_CORPUS_DIR = Path("tests") / "conformance" / "corpus"


@dataclass(frozen=True)
class ConformanceReport:
    """Everything one conformance run produced."""

    budget: str
    seed: int
    targets: list[str]
    results: list[CheckResult]
    reproducers: list[str]

    @property
    def counts(self) -> dict[str, int]:
        summary = {"pass": 0, "fail": 0, "skip": 0}
        for result in self.results:
            summary[result.status] += 1
        return summary

    @property
    def failures(self) -> list[CheckResult]:
        return [r for r in self.results if r.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "schema": "repro.conformance/1",
            "budget": self.budget,
            "seed": self.seed,
            "targets": self.targets,
            "summary": self.counts,
            "reproducers": self.reproducers,
            "results": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        counts = self.counts
        lines = [f"conformance: budget={self.budget} seed={self.seed} "
                 f"targets={len(self.targets)} checks="
                 f"{len(self.results)}",
                 f"  pass {counts['pass']}  fail {counts['fail']}  "
                 f"skip {counts['skip']}"]
        for result in self.failures:
            lines.append(f"  FAIL {result.check} on {result.target} "
                         f"[{result.engine}]: {result.detail}")
        for path in self.reproducers:
            lines.append(f"  wrote reproducer {path}")
        if self.ok:
            lines.append("  all checks passed")
        return "\n".join(lines)


def _seed_for(seed: int, target_index: int, cell_index: int) -> int:
    """Stable per-cell RNG seed (independent of execution order)."""
    sequence = np.random.SeedSequence([seed, target_index, cell_index])
    return int(sequence.generate_state(1)[0])


def _cells_for(target: Target, target_index: int, seed: int,
               budget: GeneratorBudget, n_workers: int | None) -> list:
    """The (runner, check-name) cells applicable to one target.

    Each cell is a zero-argument callable returning a
    :class:`CheckResult`, paired with a one-argument form used by the
    shrinker (same check, substituted network).
    """
    engines = [ENGINE_SPECS["ode"]]
    if target.stochastic:
        engines += [ENGINE_SPECS["ssa"], ENGINE_SPECS["tau"],
                    ENGINE_SPECS["ssa-batch"]]
    cells = []
    cell_index = 0

    def add(fn, *args, **kwargs):
        nonlocal cell_index
        cell_seed = _seed_for(seed, target_index, cell_index)
        cell_index += 1

        def run(network=None):
            subject = target if network is None else \
                dataclasses.replace(target, network=network)
            return fn(subject, *args, seed=cell_seed, **kwargs)
        cells.append(run)

    static_checks = (check_duplicate_merge, check_sampling_guard,
                     check_canonical_form)
    for check in METAMORPHIC_CHECKS:
        if check in static_checks:
            continue
        for engine in engines:
            add(check, engine)
    add(check_duplicate_merge, ENGINE_SPECS["ode"])
    add(check_sampling_guard, ENGINE_SPECS["ssa"])
    # Engine-independent: the canonical-serialisation contract the
    # serving cache keys on (reported under the ode engine column).
    add(check_canonical_form, ENGINE_SPECS["ode"])
    add(check_ode_solvers, n_workers=n_workers)
    add(check_batch_vs_reference, n_workers=n_workers,
        n_runs=budget.n_runs)
    add(check_ssa_vs_ode, n_workers=n_workers, n_runs=budget.n_runs)
    add(check_tau_vs_ssa, n_workers=n_workers, n_runs=budget.n_runs)
    return cells


def run_conformance(budget: str = "small", seed: int = 0, *,
                    n_workers: int | None = None,
                    corpus_dir: str | Path | None = None,
                    shrink: bool = True) -> ConformanceReport:
    """Run the full conformance battery for one ``(budget, seed)``.

    ``corpus_dir`` enables reproducer writing: the first failure of
    each distinct check name is greedily shrunk and serialised there.
    """
    try:
        spec = BUDGETS[budget]
    except KeyError:
        raise ReproError(f"unknown budget {budget!r}; choose from "
                         f"{sorted(BUDGETS)}") from None
    targets = generate_targets(spec, seed)
    results: list[CheckResult] = []
    reproducers: list[str] = []
    shrunk_checks: set[str] = set()
    for target_index, target in enumerate(targets):
        for cell in _cells_for(target, target_index, seed, spec,
                               n_workers):
            result = cell()
            results.append(result)
            if (result.failed and shrink and corpus_dir is not None
                    and result.check not in shrunk_checks):
                shrunk_checks.add(result.check)

                def still_fails(network, _cell=cell,
                                _check=result.check):
                    return _cell(network).failed

                minimal = shrink_network(target.network, still_fails)
                path = write_reproducer(minimal, result.check,
                                        result.detail, corpus_dir)
                reproducers.append(str(path))
    return ConformanceReport(
        budget=budget, seed=seed,
        targets=[t.name for t in targets], results=results,
        reproducers=reproducers)


def replay_network(network, *, name: str = "corpus",
                   t_final: float = 2.0, stochastic: bool = True,
                   seed: int = 0) -> list[CheckResult]:
    """Replay the fast invariant battery against one (corpus) network.

    Used by ``tests/conformance/test_corpus_replay.py`` and the CLI's
    ``--replay`` mode: every metamorphic invariant on every applicable
    engine, plus the cross-solver and bitwise batch-vs-reference
    oracles -- cheap enough to run on every shrunk reproducer in
    tier-1, forever.
    """
    target = Target(name, network, CONFORMANCE_SCHEME,
                    t_final=t_final, stochastic=stochastic)
    budget = BUDGETS["tiny"]
    cells = _cells_for(target, 0, seed, budget, n_workers=1)
    # Drop the two *statistical* ensemble oracles (ssa-vs-ode and
    # tau-vs-ssa, the last two cells): statistically meaningless on
    # minimal reproducers and by far the slowest cells.  The bitwise
    # batch-vs-reference oracle stays -- it is cheap and exact.
    return [cell() for cell in cells[:-2]]
