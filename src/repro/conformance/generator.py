"""Constrained random generation of conformance targets.

The harness needs *many* small networks that every engine can afford to
simulate, so the generator is constrained rather than free-form:

- mass-action order at most two (the implementable fragment);
- no expansive reactions: for order >= 1 the total product coefficient
  never exceeds the total reactant coefficient, and zeroth-order sources
  produce exactly one unit -- so deterministic states stay bounded
  (linear growth at worst) and SSA event counts stay affordable;
- no no-op reactions (identical reactant and product multisets);
- integer initial quantities, so the stochastic engines' ``rint``
  rounding is exact and cross-engine comparisons are meaningful;
- every candidate is linted and rejected on any error-severity
  diagnostic ("lint-clean"), so the harness never chases networks the
  static analyser already rejects.

All randomness flows from one :class:`numpy.random.SeedSequence`, so a
``(budget, seed)`` pair names one exact target list forever.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import FAST, SLOW, RateScheme
from repro.errors import NetworkError

#: Rate scheme used for random conformance targets.  A mildly stiff
#: separation (50x) keeps LSODA/BDF honest while keeping exact-SSA
#: event counts affordable for ensemble oracles.
CONFORMANCE_SCHEME = RateScheme({FAST: 50.0, SLOW: 1.0})


@dataclass(frozen=True)
class GeneratorBudget:
    """Size knobs for one conformance run.

    ``n_networks`` random networks are generated with at most
    ``max_species``/``max_reactions`` each; stochastic ensemble oracles
    use ``n_runs`` realisations; ``t_final`` bounds every integration
    span; ``include_circuits`` adds the built-in clock/counter/machine
    networks as targets.
    """

    n_networks: int
    max_species: int
    max_reactions: int
    n_runs: int
    t_final: float
    include_circuits: bool


BUDGETS: dict[str, GeneratorBudget] = {
    # "tiny" exists for the test suite: one network, minimal ensembles.
    "tiny": GeneratorBudget(n_networks=1, max_species=4, max_reactions=4,
                            n_runs=8, t_final=1.0, include_circuits=False),
    "small": GeneratorBudget(n_networks=4, max_species=5, max_reactions=6,
                             n_runs=16, t_final=2.0,
                             include_circuits=True),
    "medium": GeneratorBudget(n_networks=12, max_species=7,
                              max_reactions=10, n_runs=32, t_final=2.0,
                              include_circuits=True),
    "large": GeneratorBudget(n_networks=40, max_species=10,
                             max_reactions=16, n_runs=64, t_final=4.0,
                             include_circuits=True),
}

#: Generation attempts per accepted network before giving up.  The
#: constraints are mild, so rejection sampling converges fast; the cap
#: guards against a buggy constraint locking the generator.
_MAX_ATTEMPTS = 200


def _random_reaction(rng: np.random.Generator, names: list[str]) -> tuple:
    """One constrained ``(reactants, products, rate)`` triple."""
    order = int(rng.choice([0, 1, 1, 2, 2, 2]))
    reactants: dict[str, int] = {}
    for _ in range(order):
        name = str(rng.choice(names))
        reactants[name] = reactants.get(name, 0) + 1
    if order == 0:
        # Zeroth-order source: exactly one product unit (linear growth).
        products = {str(rng.choice(names)): 1}
    else:
        budget = sum(reactants.values())
        n_products = int(rng.integers(0, budget + 1))
        products = {}
        for _ in range(n_products):
            name = str(rng.choice(names))
            products[name] = products.get(name, 0) + 1
    kind = int(rng.choice([0, 1, 2]))
    if kind == 0:
        rate: float | str = FAST
    elif kind == 1:
        rate = SLOW
    else:
        rate = float(np.round(10.0 ** rng.uniform(-1.0, 1.5), 4))
    return reactants, products, rate


def random_network(seed: np.random.SeedSequence | int,
                   max_species: int = 5, max_reactions: int = 6,
                   name: str = "conf") -> Network:
    """One random, lint-clean, non-expansive mass-action network.

    Deterministic in ``seed``: the same seed always produces the same
    network, independently of how many candidates were rejected.
    """
    from repro.lint import LintConfig, lint_network

    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    rng = np.random.default_rng(seed)
    for _ in range(_MAX_ATTEMPTS):
        network = Network(name)
        n_species = int(rng.integers(2, max_species + 1))
        names = [f"S{i}" for i in range(n_species)]
        for s in names:
            network.add_species(s)
        n_reactions = int(rng.integers(1, max_reactions + 1))
        for _ in range(n_reactions):
            reactants, products, rate = _random_reaction(rng, names)
            if reactants == products:
                continue  # no-op reaction: nothing to simulate
            network.add(reactants, products, rate)
        if not network.reactions:
            continue
        # Integer initial quantities, at least one positive so every
        # engine has something to do.
        for s in names:
            if rng.random() < 0.7:
                network.set_initial(s, float(rng.integers(1, 11)))
        if not any(network.initial.values()):
            network.set_initial(names[0], 5.0)
        report = lint_network(network, LintConfig())
        if report.exit_code() == 0:
            return network
    raise NetworkError(
        f"could not generate a lint-clean network in {_MAX_ATTEMPTS} "
        f"attempts (seed {seed.entropy!r})")


@dataclass(frozen=True)
class Target:
    """One conformance target: a network plus how to exercise it.

    ``stochastic`` gates the SSA/tau checks and oracles (off for the
    oscillator, whose event counts are prohibitive at unit volume);
    ``stiff`` gates the explicit internal-rk45 differential oracle.
    """

    name: str
    network: Network
    scheme: RateScheme
    t_final: float
    stochastic: bool = True
    stiff: bool = False


def _circuit_targets(t_final: float) -> list[Target]:
    """The built-in circuits as conformance targets.

    These are the networks the paper's claims actually ride on; the
    random networks cover the mass-action fragment broadly, the circuits
    cover the protocol machinery (clock rotation, dual-rail carry
    chain, a synthesized machine network).  The menu comes from the
    shared scenario registry: every scenario tagged
    ``conformance-circuit`` contributes one target, built from its
    ``conformance`` recipe, in registration order.
    """
    from repro.scenarios import get_scenario, scenario_names

    targets = []
    for name in scenario_names(tag="conformance-circuit"):
        scenario = get_scenario(name)
        recipe = scenario.conformance
        targets.append(Target(
            recipe["target"],
            scenario.network(**recipe.get("params", {})),
            RateScheme(),
            t_final=min(t_final, recipe["t_final_cap"]),
            stochastic=recipe["stochastic"],
            stiff=recipe["stiff"]))
    return targets


def generate_targets(budget: GeneratorBudget,
                     seed: int = 0) -> list[Target]:
    """The deterministic target list for one ``(budget, seed)`` pair."""
    root = np.random.SeedSequence(seed)
    children = root.spawn(budget.n_networks)
    targets = [
        Target(f"random:{i:03d}",
               random_network(child, budget.max_species,
                              budget.max_reactions, name=f"conf_{i:03d}"),
               CONFORMANCE_SCHEME, budget.t_final)
        for i, child in enumerate(children)
    ]
    if budget.include_circuits:
        targets.extend(_circuit_targets(budget.t_final))
    return targets
