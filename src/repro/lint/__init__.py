"""Static analysis for molecular reaction programs.

A rule registry plus ~10 concrete rules covering the three-phase
transfer protocol, rate-category hygiene, absence-indicator usage,
conservation structure, reachability, implementability and
composition.  Rules run over raw :class:`~repro.crn.network.Network`
objects (parsed ``.crn`` files) or full synthesized circuits; some
rules need circuit-level structure and are skipped for raw networks.

Entry points:

- :func:`lint_network` / :func:`lint_circuit` -- run all enabled rules
  and return a :class:`LintReport`;
- ``python -m repro lint`` -- the CLI with text/JSON/SARIF output;
- :data:`RULE_REGISTRY` -- the registered rules, in report order.

Diagnostic codes live in the ``REPRO-Exxx`` (error) / ``REPRO-Wxxx``
(warning/note) namespace; ``docs/lint.md`` catalogues every code.
"""

from repro.lint.engine import (
    Diagnostic,
    LintConfig,
    LintConfigError,
    LintContext,
    LintReport,
    Rule,
    RULE_REGISTRY,
    Severity,
    all_codes,
    lint_circuit,
    lint_network,
    rule,
    run_rules,
)
from repro.lint import rules as _rules  # noqa: F401  (registers rules)
from repro.lint.rules.composition import merge_diagnostics

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintConfigError",
    "LintContext",
    "LintReport",
    "Rule",
    "RULE_REGISTRY",
    "Severity",
    "all_codes",
    "lint_circuit",
    "lint_network",
    "merge_diagnostics",
    "rule",
    "run_rules",
]
