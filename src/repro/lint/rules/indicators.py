"""Absence-indicator misuse rules.

An absence indicator for colour ``k`` may only be *net*-consumed by:

- an absence-detection reaction -- a species of colour ``k`` consumes
  it catalytically (``i + X_k -> X_k``);
- a consuming-mode gated transfer out of colour ``next(k)`` (the colour
  the indicator gates: ``i + X_next(k) -> ...``);
- indicator self-damping (``2 i -> i``).

Anything else couples the phase machinery to data in a way the protocol
does not license (REPRO-E301).  Conversely, an indicator that is
generated but never net-consumed grows without bound and its colour's
"absence" can never be read (REPRO-W302).
"""

from __future__ import annotations

from repro.crn.species import next_color
from repro.lint.engine import LintContext, rule


@rule("indicator-misuse",
      codes=("REPRO-E301", "REPRO-W302"),
      description="Absence indicators may only be consumed by their "
                  "colour's detection reactions or the transfers they "
                  "gate, and every generated indicator needs a drain.")
def check_indicator_misuse(ctx: LintContext):
    network = ctx.network
    indicators = ctx.indicators()
    if not indicators:
        return
    produced: set[str] = set()
    consumed: set[str] = set()
    for index, reaction in enumerate(network.reactions):
        net = {s.name: c for s, c in reaction.net_change().items()}
        for name, color in indicators.items():
            change = net.get(name, 0)
            if change > 0:
                produced.add(name)
                continue
            if change >= 0:
                continue
            consumed.add(name)
            non_indicator = [s for s in reaction.reactants
                             if s.name not in indicators]
            detection = any(ctx.meta(s).color == color
                            and reaction.is_catalytic_in(s)
                            for s in non_indicator)
            gated_transfer = any(ctx.meta(s).color == next_color(color)
                                 for s in non_indicator)
            self_damping = not non_indicator
            if not (detection or gated_transfer or self_damping):
                yield ctx.diag(
                    "REPRO-E301",
                    f"indicator {name!r} ({color}-absence) is consumed "
                    f"by reaction {reaction} outside its colour: only "
                    f"{color} detection or transfers out of "
                    f"{next_color(color)} may drain it",
                    reaction_index=index,
                    fix_hint="gate the reaction with the indicator "
                             "catalytically, or use the indicator "
                             "assigned to the source colour")
    for name in sorted(produced - consumed):
        yield ctx.diag(
            "REPRO-W302",
            f"indicator {name!r} is generated but never consumed: it "
            f"grows without bound and {indicators[name]}-absence can "
            f"never switch off",
            species=name,
            fix_hint="add the fast consumption reaction "
                     f"{name} + X -> X for every {indicators[name]} "
                     "species (and damping in catalytic mode)")
