"""Implementability of reaction orders on the DSD chassis.

The strand-displacement compiler (:mod:`repro.dsd.compiler`) implements
reactions up to molecularity 3 (trimolecular reactions cost an extra
pre-pairing step); anything higher has no chassis mapping.

``implementability`` emits REPRO-E105 (order > 3) and REPRO-W106
(trimolecular, warning).
"""

from __future__ import annotations

from repro.crn.analysis import reaction_order_histogram
from repro.lint.engine import LintContext, rule


@rule("implementability",
      codes=("REPRO-E105", "REPRO-W106"),
      description="Reaction orders must be within what the DSD chassis "
                  "can compile (max order 3).")
def check_implementability(ctx: LintContext):
    histogram = reaction_order_histogram(ctx.network)
    for order, count in sorted(histogram.items()):
        if order > 3:
            yield ctx.diag(
                "REPRO-E105",
                f"{count} reactions of order {order}: not compilable "
                f"to the strand-displacement chassis (max order 3)",
                fix_hint="decompose the reaction into bimolecular "
                         "steps via explicit intermediates")
        elif order == 3:
            yield ctx.diag(
                "REPRO-W106",
                f"{count} trimolecular reactions: compiled via a "
                f"pre-pairing step (extra fuel complexes)",
                fix_hint="prefer bimolecular formulations where the "
                         "extra fuel complexes matter")
