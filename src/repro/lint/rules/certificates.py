"""Composition-certificate rule: the REPRO-C namespace.

Bridges the static certificate pass (:mod:`repro.certify`) into the
lint pipeline so certification failures surface through the same
text/JSON/SARIF reporting and CI gate as every other diagnostic:

``REPRO-C801`` (error)
    the module is *uncertifiable*: its internal feedback never
    contracts (no finite horizon with ``||A^h|| < 1``), its network
    amplifies signal mass around a loop, or a rate category cannot be
    bounded.  No error-propagation guarantee exists.

``REPRO-C802`` (error)
    *small-gain violation*: the module certifies, but its end-to-end
    error bound escapes the digital noise margin at the operating
    separation.  Composed designs with this diagnostic must not ship.

``REPRO-W803`` (warning)
    certified, but the operating separation is within the configured
    headroom factor of the certified minimum -- the design computes,
    with less slack than policy demands.  Suppressed when C802 already
    fired (no headroom to measure below a failed floor).

``REPRO-W804`` (warning)
    certified, but one transfer's required settle time exceeds the
    configured fraction of a slow time unit -- the clock phase budget
    is too tight for the certified disturbance gain.

Configuration: pass a :class:`~repro.certify.certificate.CertifyConfig`
as the ``certify_config`` lint option to change margins and headroom.
"""

from __future__ import annotations

from repro.certify.certificate import CertifyConfig
from repro.certify.derive import design_certificate, network_certificate
from repro.errors import CertifyError
from repro.lint.engine import LintContext, Severity, rule


def _certify_config(ctx: LintContext) -> CertifyConfig:
    configured = ctx.config.option("certify_config", None)
    return configured if configured is not None else CertifyConfig()


@rule("composition-certificate",
      codes=("REPRO-C801", "REPRO-C802", "REPRO-W803", "REPRO-W804"),
      description="Every module must carry an ISS composition "
                  "certificate whose error bound stays inside the "
                  "digital noise margin.",
      severities={"REPRO-C801": Severity.ERROR,
                  "REPRO-C802": Severity.ERROR,
                  "REPRO-W803": Severity.WARNING,
                  "REPRO-W804": Severity.WARNING})
def check_composition_certificate(ctx: LintContext):
    config = _certify_config(ctx)
    scheme = ctx.scheme
    design = getattr(ctx.circuit, "design", None)
    try:
        if design is not None:
            certificate = design_certificate(
                design, scheme, config, network=ctx.network)
        else:
            certificate = network_certificate(ctx.network, scheme,
                                              config)
    except CertifyError as exc:
        yield ctx.diag(
            "REPRO-C801", str(exc),
            fix_hint="add damping to the feedback (|coefficients| "
                     "summing below 1 around every loop) or break the "
                     "amplifying cycle")
        return

    separation = certificate.separation
    violated = not certificate.certified_at(separation, config)
    if violated:
        yield ctx.diag(
            "REPRO-C802",
            f"module {certificate.module!r}: certified error bound "
            f"{certificate.error_bound(separation, config):.4g} "
            f"exceeds the noise margin {config.noise_margin:g} at "
            f"separation {separation:g} (needs >= "
            f"{certificate.min_separation(config):.4g})",
            fix_hint="widen the fast/slow separation or reduce the "
                     "composition's disturbance gain")
    elif separation < config.headroom * certificate.min_separation(config):
        yield ctx.diag(
            "REPRO-W803",
            f"module {certificate.module!r}: separation "
            f"{separation:g} is within {config.headroom:g}x of the "
            f"certified minimum "
            f"{certificate.min_separation(config):.4g} -- certified, "
            f"but below the configured headroom",
            fix_hint="widen the separation or relax the headroom "
                     "policy")
    budget = config.phase_budget / scheme.slow
    if certificate.required_settle_time(config) > budget:
        yield ctx.diag(
            "REPRO-W804",
            f"module {certificate.module!r}: one transfer needs "
            f"{certificate.required_settle_time(config):.4g} time "
            f"units to settle, above the phase budget {budget:.4g} "
            f"({config.phase_budget:g} of a slow time unit)",
            fix_hint="speed up the fast band or allow a larger "
                     "phase budget")
