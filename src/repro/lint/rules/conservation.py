"""Conservation-law rules derived from the stoichiometric left null space.

``conservation`` (REPRO-W401, REPRO-W402; notes by default)
    Each row of the left null space of the stoichiometry matrix is an
    invariant ``w . x(t)``.  A coloured signal species covered by no
    invariant has no structurally-protected total (REPRO-W401), and a
    coloured network whose summed coloured quantity changes under some
    reaction leaks value through the rotation (REPRO-W402).  Both are
    informational: synthesized machines *intentionally* leak (gains
    rescale, scavengers flush residue), but the report tells a designer
    exactly where.
"""

from __future__ import annotations

import numpy as np

from repro.lint.engine import LintContext, Severity, rule

#: Roles whose totals a designer expects to be protected.
_SIGNAL_ROLES = ("signal", "clock")


@rule("conservation",
      codes=("REPRO-W401", "REPRO-W402"),
      description="Derive conservation laws from the left null space; "
                  "flag signals with no invariant and leaky coloured "
                  "totals.",
      severities={"REPRO-W401": Severity.NOTE,
                  "REPRO-W402": Severity.NOTE})
def check_conservation(ctx: LintContext):
    network = ctx.network
    colored = [s for s in network.species
               if s.color is not None and s.role in _SIGNAL_ROLES]
    if not colored:
        return
    basis = network.conservation_laws()
    index = network.index_map()
    covered: set[str] = set()
    if basis.size:
        magnitudes = np.max(np.abs(basis), axis=0)
        covered = {name for name, i in index.items()
                   if magnitudes[i] > 1e-8}
    for species in colored:
        if species.name not in covered:
            yield ctx.diag(
                "REPRO-W401",
                f"no conservation law covers {species.name!r}: its "
                f"quantity is not structurally invariant along any "
                f"combination of species",
                species=species.name,
                fix_hint="expected for rescaled or drained signals; "
                         "otherwise check for a missing landing or "
                         "annihilation reaction")
    weights = np.zeros(network.n_species)
    for species in colored:
        weights[index[species.name]] = 1.0
    drift = weights @ network.stoichiometry_matrix()
    leaky = [j for j in range(network.n_reactions)
             if abs(drift[j]) > 1e-9]
    if leaky:
        example = network.reactions[leaky[0]]
        yield ctx.diag(
            "REPRO-W402",
            f"total coloured quantity is not conserved: {len(leaky)} "
            f"reactions change it (e.g. {example} changes it by "
            f"{drift[leaky[0]]:+g})",
            reaction_index=leaky[0],
            fix_hint="gains, drains and scavengers legitimately "
                     "rescale value; audit the listed reactions if "
                     "the rotation should be lossless")
