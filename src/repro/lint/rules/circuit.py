"""Circuit-level rule: the reactions must realise the design matrix.

``coefficient-realisation`` (REPRO-E104) needs the synthesized circuit's
design bookkeeping, so it is skipped on raw networks.
"""

from __future__ import annotations

from fractions import Fraction

from repro.lint.engine import LintContext, rule


def _gain_ratio(circuit, copy_name: str) -> Fraction | None:
    """Units of accumulator produced per unit of copy consumed."""
    network = circuit.network
    copy = network.get_species(copy_name)
    direct = [r for r in network.reactions
              if r.reactants.get(copy, 0) > r.products.get(copy, 0)
              and "scavenges" not in r.label]
    if not direct:
        return None
    consumed = Fraction(0)
    produced = Fraction(0)
    # Follow the linearised-division chain: count total copy consumption
    # and accumulator production over one full q-unit bite.
    stages = sorted(direct, key=lambda r: r.label)
    for reaction in stages:
        consumed += reaction.reactants.get(copy, 0) \
            - reaction.products.get(copy, 0)
        for product, coeff in reaction.products.items():
            if product.name.startswith("a_"):
                produced += coeff
    if consumed == 0:
        return None
    return produced / consumed


@rule("coefficient-realisation",
      codes=("REPRO-E104",),
      description="Summed over a cycle, the reactions must realise the "
                  "design's coefficient matrix exactly.",
      needs_circuit=True)
def check_coefficient_realisation(ctx: LintContext):
    circuit = ctx.circuit
    design = circuit.design
    network = circuit.network
    for (sink, source), coefficient in design.coefficients.items():
        for rail in circuit.rails():
            copy_name = f"c_{source}__{sink}_{rail}"
            if copy_name not in network:
                yield ctx.diag(
                    "REPRO-E104",
                    f"missing copy species {copy_name!r} for "
                    f"coefficient ({sink}, {source})",
                    species=copy_name,
                    fix_hint="re-synthesize the design; the fan-out "
                             "stage must emit one copy per edge")
                continue
            realised = _gain_ratio(circuit, copy_name)
            if realised is None:
                yield ctx.diag(
                    "REPRO-E104",
                    f"no gain stage consumes {copy_name!r}",
                    species=copy_name,
                    fix_hint="every copy species needs a gain stage "
                             "feeding its sink's accumulator")
            elif realised != abs(coefficient):
                yield ctx.diag(
                    "REPRO-E104",
                    f"coefficient ({sink}, {source}) is "
                    f"{coefficient} but the reactions realise "
                    f"{realised}",
                    species=copy_name,
                    fix_hint="the gain stage must consume q copies and "
                             "produce p accumulator units for a p/q "
                             "coefficient")
