"""Rate-category consistency rules.

The paper's robustness contract is that reactions fall into two coarse
categories and only *fast >> slow* matters.  Three checks police that
discipline:

``rate-category`` (REPRO-W201)
    every reaction must be classifiable: symbolic categories must be
    ones a default :class:`~repro.crn.rates.RateScheme` resolves, and
    numeric constants must sit clearly inside the fast or slow band
    (a constant near the geometric midpoint belongs to neither).

``rate-separation`` (REPRO-W202, REPRO-W203)
    cycles in the complex graph must not mix fast and slow reactions
    (a mixed-timescale loop has no two-category reading), and the
    worst-case separation ratio ``min(fast)/max(slow)`` across the
    network must stay above a threshold (default 100).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.crn.rates import AMP, DAMP, FAST, GEN, SLOW
from repro.lint.engine import LintContext, rule

#: Symbolic categories that scale with the slow timescale.
SLOW_CLASS = frozenset({SLOW, GEN, AMP, DAMP})

#: Indicator-internal categories excluded from the separation ratio.
AUXILIARY_CATEGORIES = frozenset({GEN, AMP, DAMP})


def _midpoint(scheme) -> float:
    return math.sqrt(scheme.fast * scheme.slow)


def classify_rate(rate, scheme) -> str | None:
    """Coarse class of a rate: ``"fast"``, ``"slow"`` or ``None``.

    Symbolic categories map by name; numeric constants split at the
    geometric midpoint of the scheme's fast and slow values.  ``None``
    means the symbolic category is unknown to the scheme.
    """
    if isinstance(rate, str):
        if rate == FAST:
            return "fast"
        if rate in SLOW_CLASS:
            return "slow"
        return None
    return "fast" if float(rate) >= _midpoint(scheme) else "slow"


@rule("rate-category",
      codes=("REPRO-W201",),
      description="Every reaction must be classifiable as fast or slow "
                  "under the rate scheme.")
def check_rate_category(ctx: LintContext):
    scheme = ctx.scheme
    margin = float(ctx.config.option("band_margin", 3.0))
    midpoint = _midpoint(scheme)
    known = set(scheme.values)
    for index, reaction in enumerate(ctx.network.reactions):
        rate = reaction.rate
        if isinstance(rate, str):
            if rate not in known:
                yield ctx.diag(
                    "REPRO-W201",
                    f"reaction {reaction} uses unknown rate category "
                    f"{rate!r}; the scheme defines {sorted(known)}",
                    reaction_index=index,
                    fix_hint="use 'fast' or 'slow', or add the "
                             "category to the RateScheme")
            continue
        value = float(rate)
        if value > 0 and midpoint / margin <= value <= midpoint * margin:
            yield ctx.diag(
                "REPRO-W201",
                f"reaction {reaction} has numeric rate {value:g} near "
                f"the fast/slow midpoint {midpoint:g}: it belongs to "
                f"neither category",
                reaction_index=index,
                fix_hint="move the constant clearly into one band, or "
                         "use a symbolic category")


def _complex_cycles(network):
    """Strongly-connected complex groups and their reaction indices."""
    index: dict[frozenset, int] = {}
    edges: list[tuple[int, int, int]] = []
    for reaction_index, reaction in enumerate(network.reactions):
        source = frozenset((s.name, c)
                           for s, c in reaction.reactants.items())
        target = frozenset((s.name, c)
                           for s, c in reaction.products.items())
        for key in (source, target):
            if key not in index:
                index[key] = len(index)
        edges.append((index[source], index[target], reaction_index))
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(index)))
    graph.add_edges_from((u, v) for u, v, _ in edges)
    names = {i: key for key, i in index.items()}
    for component in nx.strongly_connected_components(graph):
        if len(component) < 2:
            continue
        members = [r for u, v, r in edges
                   if u in component and v in component]
        yield component, members, names


def _format_complex(key: frozenset) -> str:
    terms = sorted(key)
    if not terms:
        return "0"
    return " + ".join(name if coeff == 1 else f"{coeff} {name}"
                      for name, coeff in terms)


@rule("rate-separation",
      codes=("REPRO-W202", "REPRO-W203"),
      description="Complex-graph cycles must not mix fast and slow "
                  "reactions, and the global fast/slow separation "
                  "ratio must stay large.")
def check_rate_separation(ctx: LintContext):
    network = ctx.network
    scheme = ctx.scheme
    for component, members, names in _complex_cycles(network):
        classes = {classify_rate(network.reactions[i].rate, scheme)
                   for i in members}
        if "fast" in classes and "slow" in classes:
            resolved = [scheme.resolve(network.reactions[i].rate)
                        for i in members]
            fasts = [v for i, v in zip(members, resolved)
                     if classify_rate(network.reactions[i].rate,
                                      scheme) == "fast"]
            slows = [v for i, v in zip(members, resolved)
                     if classify_rate(network.reactions[i].rate,
                                      scheme) == "slow"]
            ratio = min(fasts) / max(slows)
            cycle = ", ".join(sorted(_format_complex(names[node])
                                     for node in component))
            yield ctx.diag(
                "REPRO-W202",
                f"complex cycle {{{cycle}}} mixes fast and slow "
                f"reactions (worst-case separation {ratio:g}): a "
                f"mixed-timescale loop has no two-category reading",
                fix_hint="put every reaction of a closed complex "
                         "cycle in the same rate category")
    threshold = float(ctx.config.option("separation_threshold", 100.0))
    fasts: list[tuple[int, float]] = []
    slows: list[tuple[int, float]] = []
    for index, reaction in enumerate(network.reactions):
        rate = reaction.rate
        if isinstance(rate, str) and rate in AUXILIARY_CATEGORIES:
            continue  # indicator-internal timescales
        cls = classify_rate(rate, scheme)
        if cls == "fast":
            fasts.append((index, scheme.resolve(rate)))
        elif cls == "slow":
            slows.append((index, scheme.resolve(rate)))
    if fasts and slows:
        slowest_fast = min(fasts, key=lambda item: item[1])
        fastest_slow = max(slows, key=lambda item: item[1])
        ratio = slowest_fast[1] / fastest_slow[1]
        if ratio < threshold:
            yield ctx.diag(
                "REPRO-W203",
                f"worst-case fast/slow separation is {ratio:g} "
                f"(< {threshold:g}): slowest fast reaction "
                f"{network.reactions[slowest_fast[0]]} vs fastest "
                f"slow reaction {network.reactions[fastest_slow[0]]}",
                fix_hint="widen the gap between the fast and slow "
                         "bands; the protocol's correctness rests on "
                         "the separation")
