"""Concrete lint rules.

Importing this package registers every rule; the import order below
fixes the registry (and therefore execution and report) order.  The
first four modules mirror the legacy ``core.verify`` check order, which
the compatibility shim depends on.
"""

from repro.lint.rules import protocol as protocol  # noqa: F401
from repro.lint.rules import circuit as circuit  # noqa: F401
from repro.lint.rules import implementability as implementability  # noqa: F401
from repro.lint.rules import rates as rates  # noqa: F401
from repro.lint.rules import indicators as indicators  # noqa: F401
from repro.lint.rules import conservation as conservation  # noqa: F401
from repro.lint.rules import reachability as reachability  # noqa: F401
from repro.lint.rules import composition as composition  # noqa: F401
from repro.lint.rules import certificates as certificates  # noqa: F401
