"""Dead-species and unreachable-reaction rules.

Both generalize :func:`repro.crn.analysis.stranded_species` and
:func:`repro.crn.analysis.reachable_species`.  The availability seed is
the union of species with non-zero initial quantity and *external*
species (never net-produced by any reaction -- driver-injected inputs,
standing catalysts); zeroth-order sources join the closure for free.

``reachability`` emits:

REPRO-W501 (note)
    an uncoloured signal species that fireable reactions net-produce but
    nothing ever net-consumes -- quantity parks there forever.  Coloured
    species are the parking *error* REPRO-E101; auxiliary readout pools
    and wastes (``role=aux``) are exempt by design.

REPRO-W502 (warning)
    a reaction that can never fire because some reactant is not
    producible from the seed -- dead code in the reaction program.
"""

from __future__ import annotations

from repro.crn.analysis import (external_species, reachable_species,
                                stranded_species)
from repro.lint.engine import LintContext, Severity, rule

_EXEMPT_ROLES = ("aux", "indicator")


def availability_seed(network) -> set[str]:
    """Initial quantities plus externally-supplied species."""
    seed = {name for name, value in network.initial.items() if value > 0}
    return seed | external_species(network)


@rule("reachability",
      codes=("REPRO-W501", "REPRO-W502"),
      description="Detect dead/stranded species and reactions that can "
                  "never fire from the initial state.",
      severities={"REPRO-W501": Severity.NOTE})
def check_reachability(ctx: LintContext):
    network = ctx.network
    if not network.reactions:
        return
    seed = availability_seed(network)
    indicator_names = set(ctx.indicators())
    stranded = stranded_species(network, seed)
    for name in sorted(stranded):
        species = network.get_species(name)
        if species.color is not None:  # the parking error owns these
            continue
        if species.role in _EXEMPT_ROLES or name in indicator_names:
            continue
        yield ctx.diag(
            "REPRO-W501",
            f"species {name!r} is stranded: reactions produce it but "
            f"nothing ever consumes it, so quantity parks there "
            f"forever",
            species=name,
            fix_hint="declare it role=aux if it is a readout/waste "
                     "pool, or add a consuming reaction")
    reachable = reachable_species(network, seed)
    for index, reaction in enumerate(network.reactions):
        missing = sorted(s.name for s in reaction.reactants
                         if s.name not in reachable)
        if missing:
            yield ctx.diag(
                "REPRO-W502",
                f"reaction {reaction} can never fire: reactant(s) "
                f"{', '.join(repr(m) for m in missing)} are not "
                f"producible from the initial state",
                reaction_index=index,
                fix_hint="give the missing species an initial "
                         "quantity, a source reaction, or remove the "
                         "dead reaction")
