"""Phase-protocol legality rules.

``parking`` (REPRO-E101)
    every colour-coded species needs a quantity-consuming reaction, or
    its standing quantity permanently blocks that colour's absence
    detection.

``gate-legality`` (REPRO-E102, REPRO-E103)
    gated transfers must use the indicator the protocol assigns to their
    source colour, and move quantities only to the next colour in the
    red -> green -> blue rotation.
"""

from __future__ import annotations

from repro.crn.species import next_color, previous_color
from repro.lint.engine import LintContext, rule


@rule("parking",
      codes=("REPRO-E101",),
      description="Every coloured species must have a way out of its "
                  "colour (a transfer, drain, or annihilation).")
def check_parking(ctx: LintContext):
    network = ctx.network
    indicator_names = set(ctx.indicators())
    for species in network.species:
        if species.color is None or species.name in indicator_names:
            continue
        consuming = [r for r in network.reactions
                     if r.reactants.get(species, 0)
                     > r.products.get(species, 0)]
        if not consuming:
            yield ctx.diag(
                "REPRO-E101",
                f"coloured species {species.name!r} has no way out of "
                f"its colour: standing quantity would block the "
                f"{species.color}-absence indicator forever",
                species=species.name,
                fix_hint="add a gated transfer, drain, or annihilation "
                         "reaction consuming it")


@rule("gate-legality",
      codes=("REPRO-E102", "REPRO-E103"),
      description="Gated transfers use the indicator of their source "
                  "colour and move quantities only to the next colour.")
def check_gate_legality(ctx: LintContext):
    network = ctx.network
    indicators = ctx.indicators()
    indicator_names = set(indicators)
    for index, reaction in enumerate(network.reactions):
        gates = [s for s in reaction.reactants
                 if s.name in indicator_names]
        if not gates:
            continue
        gate = gates[0]
        colored_inputs = [s for s in reaction.reactants
                          if ctx.meta(s).color is not None
                          and s.name not in indicator_names]
        if not colored_inputs:
            continue  # indicator generation/consumption bookkeeping
        if reaction.is_catalytic_in(colored_inputs[0]):
            continue  # consumption reaction (species kills indicator)
        source_color = ctx.meta(colored_inputs[0]).color
        own_indicator = ctx.indicator_name(source_color)
        if (gate.name == own_indicator
                and reaction.is_catalytic_in(gate)
                and all(p.name == gate.name for p in reaction.products)):
            continue  # scavenger: the colour's own indicator flushes
            # sub-threshold residue once it has switched on -- legal.
        expected = ctx.indicator_name(previous_color(source_color))
        if gate.name != expected:
            yield ctx.diag(
                "REPRO-E102",
                f"reaction {reaction} gates a {source_color} source "
                f"with {gate.name!r}; the protocol assigns {expected!r}",
                reaction_index=index,
                fix_hint=f"gate transfers out of {source_color} with "
                         f"the {previous_color(source_color)}-absence "
                         f"indicator {expected!r}")
        for product in reaction.products:
            product_color = ctx.meta(product).color
            if product_color is None or product.name in indicator_names:
                continue
            if product_color not in (source_color,
                                     next_color(source_color)):
                yield ctx.diag(
                    "REPRO-E103",
                    f"reaction {reaction} moves {source_color} quantity "
                    f"to {product_color} -- not an adjacent colour",
                    reaction_index=index,
                    fix_hint="split the transfer so each hop advances "
                             "exactly one colour in the rotation")
