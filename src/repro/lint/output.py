"""Render lint reports as text, JSON, or SARIF.

All renderers take the same aggregate -- an ordered list of
``(target, report)`` pairs, where ``target`` is a display name (a file
path or ``circuit:<name>``) -- and return a string.  SARIF output is
the minimal SARIF 2.1.0 document GitHub code scanning accepts, with one
``rules`` entry per registered rule so diagnostics link back to their
documentation.
"""

from __future__ import annotations

import json

from repro.lint.engine import RULE_REGISTRY, LintReport, Severity

#: Documentation home of the REPRO-E/W catalogue.
DOCS_URL = "docs/lint.md"

#: Documentation home of the REPRO-C certificate namespace (the
#: composition-certificate rule's warning codes live there too).
CERTIFY_DOCS_URL = "docs/certify.md"

_CERTIFY_CODES = frozenset({"REPRO-W803", "REPRO-W804"})


def help_uri(code: str) -> str:
    """Per-code documentation anchor (``<a id=...>`` in the docs)."""
    certify = code.startswith("REPRO-C") or code in _CERTIFY_CODES
    base = CERTIFY_DOCS_URL if certify else DOCS_URL
    return f"{base}#{code.lower()}"


def render_text(results: list[tuple[str, LintReport]],
                verbose: bool = False) -> str:
    """Human-readable report, one line per diagnostic."""
    lines: list[str] = []
    total_errors = total_warnings = total_notes = 0
    for target, report in results:
        shown = report.diagnostics if verbose else [
            d for d in report.diagnostics
            if d.severity >= Severity.WARNING]
        if shown or verbose:
            lines.append(f"{target}:")
        for diag in shown:
            lines.append(f"  {diag.format()}")
        if verbose and not report.diagnostics:
            lines.append("  clean")
        if verbose and report.skipped:
            lines.append("  skipped (need a synthesized circuit): "
                         + ", ".join(report.skipped))
        total_errors += len(report.errors)
        total_warnings += len(report.warnings)
        total_notes += len(report.notes)
    lines.append(
        f"{len(results)} target(s): {total_errors} error(s), "
        f"{total_warnings} warning(s), {total_notes} note(s)")
    return "\n".join(lines)


def render_json(results: list[tuple[str, LintReport]]) -> str:
    """Machine-readable JSON: per-target diagnostics plus a summary."""
    payload = {
        "version": 1,
        "targets": [
            {
                "target": target,
                "ok": report.ok,
                "checked": list(report.checked),
                "skipped": list(report.skipped),
                "diagnostics": [d.to_dict() for d in report.diagnostics],
            }
            for target, report in results
        ],
        "summary": {
            "errors": sum(len(r.errors) for _, r in results),
            "warnings": sum(len(r.warnings) for _, r in results),
            "notes": sum(len(r.notes) for _, r in results),
        },
    }
    return json.dumps(payload, indent=2)


def _sarif_rules() -> list[dict]:
    entries = []
    for rule in RULE_REGISTRY.values():
        for code in rule.codes:
            entries.append({
                "id": code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "helpUri": help_uri(code),
                "defaultConfiguration": {
                    "level": rule.severity_for(code).sarif_level},
            })
    return entries


def render_sarif(results: list[tuple[str, LintReport]]) -> str:
    """Minimal SARIF 2.1.0 document for CI code-scanning upload."""
    sarif_results = []
    for target, report in results:
        for diag in report.diagnostics:
            entry: dict = {
                "ruleId": diag.code,
                "level": diag.severity.sarif_level,
                "message": {"text": diag.message},
            }
            location: dict = {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path or target},
                }
            }
            if diag.span is not None:
                location["physicalLocation"]["region"] = {
                    "startLine": int(diag.span[0]),
                    "endLine": int(diag.span[1])}
            if diag.subject:
                location["logicalLocations"] = [{"name": diag.subject}]
            entry["locations"] = [location]
            sarif_results.append(entry)
    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": DOCS_URL,
                    "rules": _sarif_rules(),
                }
            },
            "results": sarif_results,
        }],
    }
    return json.dumps(document, indent=2)


def severity_counts(results: list[tuple[str, LintReport]]
                    ) -> dict[str, int]:
    """Aggregate counts keyed by severity label."""
    counts = {sev.label: 0 for sev in Severity}
    for _, report in results:
        for diag in report.diagnostics:
            counts[diag.severity.label] += 1
    return counts
