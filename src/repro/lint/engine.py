"""Rule registry and diagnostic engine for CRN static analysis.

The lint engine runs *structural* checks on chemical reaction networks
before any ODE is integrated -- the "validate by construction, then
simulate" step of the DAC 2011 methodology.  It generalizes the
circuit-only checks that used to live in :mod:`repro.core.verify` to any
:class:`~repro.crn.network.Network`, including networks parsed from
``.crn`` files.

Concepts
--------
:class:`Rule`
    a named check registered in :data:`RULE_REGISTRY`.  One rule may emit
    several diagnostic codes (e.g. ``gate-legality`` owns both
    ``REPRO-E102`` and ``REPRO-E103``).
:class:`Diagnostic`
    one finding: code, severity, message, optional source span and fix
    hint.  Codes are namespaced ``REPRO-Exxx`` (error class) and
    ``REPRO-Wxxx`` (warning/note class); see ``docs/lint.md`` for the
    full catalogue.
:class:`LintConfig`
    per-rule enable/disable and per-code severity overrides.
:class:`LintReport`
    the ordered diagnostics plus which rules ran / were skipped.

Rules receive a :class:`LintContext` carrying the network, the optional
:class:`~repro.core.synthesis.SynthesizedCircuit` (rules that need design
bookkeeping declare ``needs_circuit=True`` and are skipped on raw
networks), and the configuration.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, replace

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.species import COLORS
from repro.errors import ReproError


class LintConfigError(ReproError):
    """Raised for invalid lint configuration (unknown rules/codes)."""


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered: NOTE < WARNING < ERROR."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        return {Severity.NOTE: "note", Severity.WARNING: "warning",
                Severity.ERROR: "error"}[self]

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise LintConfigError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.label for s in cls]}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    code: str
    rule: str
    severity: Severity
    message: str
    #: 1-based (start_line, end_line) in the source file, when known.
    span: tuple[int, int] | None = None
    path: str | None = None
    #: species name or reaction text the finding is about.
    subject: str = ""
    fix_hint: str = ""

    def format(self) -> str:
        location = ""
        if self.path and self.span:
            location = f" ({self.path}:{self.span[0]})"
        elif self.span:
            location = f" (line {self.span[0]})"
        text = (f"{self.code} {self.severity.label}: {self.message}"
                f"{location}  [{self.rule}]")
        if self.fix_hint:
            text += f"\n    fix: {self.fix_hint}"
        return text

    def to_dict(self) -> dict:
        payload = {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.span:
            payload["span"] = list(self.span)
        if self.path:
            payload["path"] = self.path
        if self.subject:
            payload["subject"] = self.subject
        if self.fix_hint:
            payload["fix_hint"] = self.fix_hint
        return payload


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    name: str
    codes: tuple[str, ...]
    description: str
    check: Callable[["LintContext"], Iterable[Diagnostic]]
    needs_circuit: bool = False
    default_severities: dict[str, Severity] = field(default_factory=dict)

    def severity_for(self, code: str) -> Severity:
        if code in self.default_severities:
            return self.default_severities[code]
        return Severity.ERROR if code.startswith("REPRO-E") \
            else Severity.WARNING


#: All registered rules, in registration order.
RULE_REGISTRY: dict[str, Rule] = {}


def rule(name: str, *, codes: tuple[str, ...], description: str,
         needs_circuit: bool = False,
         severities: dict[str, Severity] | None = None):
    """Decorator registering a check function as a lint rule."""

    def decorator(check):
        if name in RULE_REGISTRY:
            raise LintConfigError(f"duplicate rule name {name!r}")
        RULE_REGISTRY[name] = Rule(
            name=name, codes=tuple(codes), description=description,
            check=check, needs_circuit=needs_circuit,
            default_severities=dict(severities or {}))
        return check

    return decorator


def all_codes() -> dict[str, Rule]:
    """Mapping of every registered diagnostic code to its rule."""
    mapping: dict[str, Rule] = {}
    for registered in RULE_REGISTRY.values():
        for code in registered.codes:
            mapping[code] = registered
    return mapping


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection and severity policy.

    Parameters
    ----------
    select:
        if given, only these rules run (by name).
    disable:
        rules to skip (by name).
    severity_overrides:
        ``{code: Severity}`` replacing a code's default severity.
    options:
        per-rule tuning knobs; recognised keys include
        ``separation_threshold`` (REPRO-W203, default 100.0),
        ``band_margin`` (REPRO-W201 numeric ambiguity, default 3.0) and
        ``scheme`` (a :class:`~repro.crn.rates.RateScheme`).
    """

    select: frozenset[str] | None = None
    disable: frozenset[str] = frozenset()
    severity_overrides: dict[str, Severity] = field(default_factory=dict)
    options: dict = field(default_factory=dict)

    def __post_init__(self):
        known = set(RULE_REGISTRY)
        for name in (self.select or frozenset()) | self.disable:
            if name not in known:
                raise LintConfigError(
                    f"unknown lint rule {name!r}; known rules: "
                    f"{sorted(known)}")
        codes = set(all_codes())
        for code in self.severity_overrides:
            if code not in codes:
                raise LintConfigError(f"unknown diagnostic code {code!r}")

    def enabled_rules(self) -> list[Rule]:
        rules = []
        for name, registered in RULE_REGISTRY.items():
            if self.select is not None and name not in self.select:
                continue
            if name in self.disable:
                continue
            rules.append(registered)
        return rules

    def severity_for(self, registered: Rule, code: str) -> Severity:
        if code in self.severity_overrides:
            return self.severity_overrides[code]
        return registered.severity_for(code)

    def option(self, key: str, default):
        return self.options.get(key, default)


class LintContext:
    """Everything a rule needs to inspect one lint target."""

    def __init__(self, network: Network, circuit=None,
                 config: LintConfig | None = None,
                 path: str | None = None):
        self.network = network
        self.circuit = circuit
        self.config = config or LintConfig()
        self.path = path
        self._rule: Rule | None = None
        self._indicators: dict[str, str] | None = None

    # -- rate scheme ---------------------------------------------------------

    @property
    def scheme(self) -> RateScheme:
        scheme = self.config.option("scheme", None)
        return scheme if scheme is not None else RateScheme()

    # -- indicator discovery -------------------------------------------------

    def indicators(self) -> dict[str, str]:
        """Mapping of absence-indicator species name to its colour.

        For synthesized circuits the protocol names are authoritative.
        For raw networks, species with ``role="indicator"`` are matched by
        their trailing character, and the bare default names (``r``,
        ``g``, ``b``) are recognised whenever the network uses colours.
        """
        if self._indicators is not None:
            return self._indicators
        from repro.core.phases import INDICATOR_NAMES

        mapping: dict[str, str] = {}
        if self.circuit is not None:
            protocol = self.circuit.protocol
            mapping = {protocol.indicator_name(color): color
                       for color in COLORS}
        else:
            by_name = {name: color
                       for color, name in INDICATOR_NAMES.items()}
            has_colors = any(s.color is not None
                             for s in self.network.species)
            for species in self.network.species:
                if species.role == "indicator":
                    suffix = species.name[-1]
                    if suffix in by_name:
                        mapping[species.name] = by_name[suffix]
                elif species.name in by_name and has_colors:
                    mapping[species.name] = by_name[species.name]
        self._indicators = mapping
        return mapping

    def meta(self, species) -> "object":
        """The registered species (with colour/role metadata).

        Reaction sides may hold bare ``Species`` objects created from
        names (species compare by name only), so metadata must be read
        through the network registry, never off a reactant directly.
        """
        name = getattr(species, "name", species)
        return self.network.get_species(name)

    def indicator_name(self, color: str) -> str:
        """Name of the colour's absence indicator for this target."""
        if self.circuit is not None:
            return self.circuit.protocol.indicator_name(color)
        for name, mapped in self.indicators().items():
            if mapped == color:
                return name
        from repro.core.phases import INDICATOR_NAMES

        return INDICATOR_NAMES[color]

    # -- diagnostic construction ---------------------------------------------

    def diag(self, code: str, message: str, *, reaction_index: int | None = None,
             species: str | None = None, subject: str = "",
             fix_hint: str = "") -> Diagnostic:
        assert self._rule is not None, "diag() outside a rule run"
        if code not in self._rule.codes:
            raise LintConfigError(
                f"rule {self._rule.name!r} emitted unregistered code "
                f"{code!r}")
        span = None
        provenance = getattr(self.network, "provenance", {})
        if reaction_index is not None:
            line = provenance.get(("reaction", reaction_index))
            if line is not None:
                span = (line, line)
            if not subject:
                subject = str(self.network.reactions[reaction_index])
        if species is not None:
            if span is None:
                line = provenance.get(("species", species))
                if line is not None:
                    span = (line, line)
            if not subject:
                subject = species
        return Diagnostic(
            code=code, rule=self._rule.name,
            severity=self.config.severity_for(self._rule, code),
            message=message, span=span, path=self.path,
            subject=subject, fix_hint=fix_hint)


@dataclass
class LintReport:
    """Outcome of one lint run over one target."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    target: str = ""

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def notes(self) -> list[Diagnostic]:
        return self.by_severity(Severity.NOTE)

    @property
    def ok(self) -> bool:
        return not self.errors

    def exit_code(self, strict: bool = False,
                  fail_on: "Severity | None" = None) -> int:
        """CI gate: 1 when any diagnostic reaches the threshold.

        ``fail_on`` sets the failing severity explicitly (``--fail-on``
        on the CLI); the default fails on errors only.  ``strict`` is
        the legacy spelling of ``fail_on=Severity.WARNING`` and the
        stricter of the two wins.
        """
        threshold = fail_on if fail_on is not None else Severity.ERROR
        if strict:
            threshold = min(threshold, Severity.WARNING)
        if any(d.severity >= threshold for d in self.diagnostics):
            return 1
        return 0

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        return (f"lint {status}: {len(self.checked)} rules, "
                f"{len(self.errors)} errors, {len(self.warnings)} "
                f"warnings, {len(self.notes)} notes")


def run_rules(context: LintContext) -> LintReport:
    """Run every enabled rule against the context."""
    report = LintReport(target=context.path or context.network.name)
    for registered in context.config.enabled_rules():
        if registered.needs_circuit and context.circuit is None:
            report.skipped.append(registered.name)
            continue
        context._rule = registered
        try:
            report.diagnostics.extend(registered.check(context))
        finally:
            context._rule = None
        report.checked.append(registered.name)
    return report


def lint_network(network: Network, config: LintConfig | None = None,
                 path: str | None = None) -> LintReport:
    """Lint a raw reaction network (e.g. parsed from a ``.crn`` file)."""
    return run_rules(LintContext(network, circuit=None, config=config,
                                 path=path))


def lint_circuit(circuit, config: LintConfig | None = None,
                 path: str | None = None) -> LintReport:
    """Lint a synthesized circuit (network + design bookkeeping)."""
    return run_rules(LintContext(circuit.network, circuit=circuit,
                                 config=config, path=path))


def with_severity(diagnostic: Diagnostic, severity: Severity) -> Diagnostic:
    """A copy of the diagnostic at a different severity."""
    return replace(diagnostic, severity=severity)
