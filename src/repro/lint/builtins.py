"""Built-in lintable targets: the repository's reference machines.

Each entry is a zero-argument factory returning either a raw
:class:`~repro.crn.network.Network` (clock, counter, FSM -- hand-built
reaction programs) or a full synthesized circuit (the filters), so the
CLI and CI can lint every shipped design with ``--circuit all``.
Factories are lazy: building a biquad synthesizes a full dual-rail
circuit, which only happens when that target is requested.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable


def _clock():
    from repro.core.clock import build_clock
    network, _, _ = build_clock(mass=20.0)
    return network


def _counter():
    from repro.digital.counter import BinaryCounter
    return BinaryCounter(3).network


def _fsm():
    from repro.digital.fsm import parity_machine
    return parity_machine().network


def _moving_average():
    from repro.apps.filters import moving_average
    from repro.core.synthesis import synthesize
    return synthesize(moving_average(2))


def _iir():
    from repro.apps.filters import iir_first_order
    from repro.core.synthesis import synthesize
    return synthesize(iir_first_order())


def _biquad():
    from repro.apps.filters import biquad
    from repro.core.synthesis import synthesize
    # Coefficients of examples/biquad_filter.py: signed feedback forces
    # dual-rail synthesis, the most general circuit shape we ship.
    return synthesize(biquad(Fraction(1, 4), Fraction(1, 2),
                             Fraction(1, 4), Fraction(-1, 4),
                             Fraction(1, 8)))


#: name -> factory returning a Network or a synthesized circuit.
BUILTIN_CIRCUITS: dict[str, Callable] = {
    "clock": _clock,
    "counter": _counter,
    "fsm": _fsm,
    "moving-average": _moving_average,
    "iir": _iir,
    "biquad": _biquad,
}


def build_target(name: str):
    """Instantiate a built-in target by name."""
    try:
        factory = BUILTIN_CIRCUITS[name]
    except KeyError:
        from repro.errors import ReproError
        raise ReproError(
            f"unknown built-in circuit {name!r}; choose from "
            f"{', '.join(sorted(BUILTIN_CIRCUITS))}") from None
    return factory()
