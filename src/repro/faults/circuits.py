"""Circuits under test: adapters that score one faulted trial.

A campaign needs the same four numbers from every circuit -- bit errors
against the ideal machine, settling time, boundary-residual and
phase-overlap health -- whether the circuit is the SSA binary counter or
an ODE-driven synthesized filter.  Each adapter hides its driver behind
``evaluate(scheme, plan, rng) -> TrialScore``.

The counter adapter uses a **pinned readout schedule**: readings are
taken at the *nominal* scheme's settle time even when the trial runs a
compressed scheme.  The ripple counter is internally rate-independent
(every reaction is fast, the carry path is self-sequencing), so without
a fixed external schedule no amount of slowdown could ever make it
wrong; with one, insufficient separation shows up exactly as the paper
predicts -- the chemistry has not finished when the synchronous world
looks at it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.apps.filters import iir_first_order, moving_average
from repro.core.machine import MachineOptions, SynchronousMachine
from repro.crn.rates import RateScheme
from repro.digital.counter import BinaryCounter
from repro.errors import FaultError, SimulationError
from repro.obs.classify import classify_failure
from repro.obs.monitors import MonitorConfig

#: |measured - ideal| above this is a bit error for analog machine
#: outputs (well inside the rate-robustness benchmarks' observed <0.4
#: worst-case deviation at healthy separation).
BIT_ERROR_TOLERANCE = 0.5


@dataclass(frozen=True)
class TrialScore:
    """Digital-domain score of one (possibly faulted) trial."""

    ok: bool
    bit_errors: int
    bits_total: int
    bit_error_rate: float
    #: mean time per output sample (cycle time, or the pinned settle
    #: window for the counter).
    settling_time: float
    #: worst residual mass fraction observed at a readout boundary.
    boundary_residual: float
    #: worst phase-overlap fraction reported by the protocol monitor.
    overlap: float
    stalled: bool
    unsettled: int
    classification: str | None
    detail: str = ""

    def to_dict(self) -> dict:
        payload = asdict(self)
        # Stalled trials carry an infinite settling time; JSON has no
        # spelling for it, so reports use null.
        if not np.isfinite(payload["settling_time"]):
            payload["settling_time"] = None
        return payload


class CounterCircuit:
    """The n-bit SSA ripple counter under a pinned readout schedule."""

    name = "counter"

    def __init__(self, n_bits: int = 3, n_pulses: int | None = None,
                 monitor: MonitorConfig | None = None):
        self.n_bits = int(n_bits)
        self.n_pulses = int(n_pulses) if n_pulses else 2 ** self.n_bits + 2
        #: shared threshold config (``--monitor-config``); the counter
        #: has no protocol monitor, so this tunes classification only.
        self.monitor = monitor

    def nominal_scheme(self) -> RateScheme:
        return RateScheme()

    def evaluate(self, scheme: RateScheme, plan=None,
                 rng=None) -> TrialScore:
        counter = BinaryCounter(self.n_bits)
        # Pinned schedule: the settle window is fixed by the nominal
        # scheme, not the trial's (see module docstring).
        settle = 100.0 / self.nominal_scheme().fast
        run = counter.count(self.n_pulses, scheme=scheme,
                            settle_time=settle, stochastic=True,
                            seed=rng, faults=plan, strict=False)
        expected = run.expected(2 ** self.n_bits)
        bit_errors = sum(bin(v ^ e).count("1")
                         for v, e in zip(run.values, expected))
        bits_total = len(run.values) * self.n_bits
        unsettled = sum(1 for settled in run.settled if not settled)
        # Residual carry mass per reading, as a fraction of the one unit
        # each pulse injects.
        residual = float(max(run.residuals))
        rate = bit_errors / bits_total
        ok = bit_errors == 0 and unsettled == 0
        classification = None if ok else classify_failure(
            bit_error_rate=rate, boundary_residual=residual,
            unsettled=unsettled, config=self.monitor)
        return TrialScore(ok=ok, bit_errors=bit_errors,
                          bits_total=bits_total, bit_error_rate=rate,
                          settling_time=settle,
                          boundary_residual=residual, overlap=0.0,
                          stalled=False, unsettled=unsettled,
                          classification=classification)


class MachineCircuit:
    """A synthesized design driven by :class:`SynchronousMachine`.

    Output samples deviating from the discrete-time reference by more
    than :data:`BIT_ERROR_TOLERANCE` count as bit errors; protocol
    health comes from the machine's own monitor diagnostics.
    """

    def __init__(self, name: str, builder, samples,
                 monitor: MonitorConfig | None = None,
                 options: MachineOptions | None = None):
        self.name = name
        self.builder = builder
        self.samples = [float(v) for v in samples]
        self.monitor = monitor
        #: machine strategy knobs (clocking mode, oscillator); campaigns
        #: re-run under ``clocking="adaptive"`` to measure the margin
        #: difference between the two boundary disciplines.
        self.options = options

    def nominal_scheme(self) -> RateScheme:
        return RateScheme()

    def evaluate(self, scheme: RateScheme, plan=None,
                 rng=None) -> TrialScore:
        bits_total = len(self.samples)
        try:
            machine = SynchronousMachine(
                self.builder(), scheme=scheme,
                monitor=self.monitor or MonitorConfig(),
                faults=plan, options=self.options)
            run = machine.run({"x": self.samples})
        except SimulationError as exc:
            return TrialScore(
                ok=False, bit_errors=bits_total, bits_total=bits_total,
                bit_error_rate=1.0, settling_time=float("inf"),
                boundary_residual=0.0, overlap=0.0, stalled=True,
                unsettled=0,
                classification=classify_failure(stalled=True),
                detail=str(exc))
        bit_errors = 0
        for name, measured in run.outputs.items():
            reference = run.reference[name]
            n = min(len(measured), len(reference))
            bit_errors += int(np.sum(np.abs(measured[:n] - reference[:n])
                                     > BIT_ERROR_TOLERANCE))
        rate = bit_errors / bits_total if bits_total else 0.0
        residual = max((d.value for d in run.diagnostics
                        if d.code == "REPRO-R104" and d.value is not None),
                       default=0.0)
        overlap = max((d.value for d in run.diagnostics
                       if d.code == "REPRO-R101" and d.value is not None),
                      default=0.0)
        ok = bit_errors == 0
        classification = None if ok else classify_failure(
            run.diagnostics, bit_error_rate=rate,
            boundary_residual=residual, overlap=overlap,
            config=self.monitor)
        return TrialScore(ok=ok, bit_errors=bit_errors,
                          bits_total=bits_total, bit_error_rate=rate,
                          settling_time=run.mean_cycle_time,
                          boundary_residual=float(residual),
                          overlap=float(overlap), stalled=False,
                          unsettled=0, classification=classification)


def _make_ma(**kwargs) -> MachineCircuit:
    return MachineCircuit("ma", lambda: moving_average(2),
                          [8.0, 4.0, 6.0, 2.0, 6.0, 4.0], **kwargs)


def _make_iir(**kwargs) -> MachineCircuit:
    return MachineCircuit("iir", lambda: iir_first_order(),
                          [8.0, 8.0, 8.0, 8.0, 4.0, 4.0], **kwargs)


#: Kept as public API for existing callers; the authoritative registry
#: is :mod:`repro.scenarios` (these same factories, tagged ``faults``).
CIRCUITS = {
    "counter": CounterCircuit,
    "ma": _make_ma,
    "iir": _make_iir,
}


def make_circuit(name: str, **kwargs):
    """Instantiate a circuit adapter by scenario name.

    Resolution goes through the shared scenario registry
    (:mod:`repro.scenarios`); only scenarios tagged ``faults`` (i.e.
    carrying a campaign adapter) are eligible.
    """
    from repro.errors import ScenarioError
    from repro.scenarios import get_scenario, scenario_names

    try:
        scenario = get_scenario(name)
        return scenario.circuit(**kwargs)
    except ScenarioError:
        raise FaultError(
            f"unknown circuit {name!r}; choose from "
            f"{sorted(scenario_names(tag='faults'))}") from None
