"""Fault models: physical perturbations of a network under test.

The paper's robustness claim is qualitative -- "fast reactions need only
be fast relative to slow ones" -- and the campaigns in
:mod:`repro.faults.campaign` probe it quantitatively by injecting the
perturbations a wet implementation actually suffers:

- per-reaction rate-constant mismatch (:class:`RateMismatch`),
- erosion of the fast/slow separation itself
  (:class:`SeparationCompression`),
- spurious zeroth-order production of signal species (:class:`Leak`),
- global first-order dilution/decay (:class:`Dilution`),
- pipetting noise on initial copy numbers (:class:`CopyNumberNoise`),
- a missing species at t=0 (:class:`SpeciesDeletion`),
- a transient loss of clock molecules mid-run (:class:`ClockGlitch`).

Every model is a small frozen dataclass with four *setup* hooks
(scheme, network, per-reaction rates, initial state) and one *runtime*
hook (cycle boundaries).  The contract that keeps fault injection safe
to wire through the machine drivers: **a model may add reactions and
rescale quantities, but it must never add or remove species**, so every
species index computed against the pristine network stays valid against
the faulted one.  :class:`FaultPlan` enforces this.

Plans are deterministic: a plan seeded with ``seed`` spawns one child
:class:`numpy.random.SeedSequence` per model, so the same
``(models, seed)`` pair always materialises the same perturbation --
which is what makes campaign results bitwise reproducible serial vs
parallel.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.reaction import Reaction
from repro.errors import FaultError


class FaultModel:
    """Base class: every hook defaults to the identity.

    Subclasses are frozen dataclasses, so models are hashable, picklable
    and comparable -- a campaign payload ships them to worker processes
    as-is.
    """

    #: short machine-readable name (defaults to the class name).
    kind = ""

    def describe(self) -> dict:
        payload = {"kind": self.kind or type(self).__name__}
        payload.update(asdict(self))
        return payload

    # -- setup hooks (applied once, before simulation) -----------------------

    def perturb_scheme(self, scheme: RateScheme,
                       rng: np.random.Generator) -> RateScheme:
        return scheme

    def perturb_network(self, network: Network, scheme: RateScheme,
                        rng: np.random.Generator) -> None:
        """Mutate the (already copied) network in place.

        May only *add* reactions over the existing species set.
        """

    def perturb_rates(self, rates: np.ndarray, network: Network,
                      scheme: RateScheme,
                      rng: np.random.Generator) -> np.ndarray:
        return rates

    def perturb_initial(self, initial: np.ndarray, network: Network,
                        rng: np.random.Generator) -> np.ndarray:
        return initial

    # -- runtime hook ---------------------------------------------------------

    def on_boundary(self, cycle: int, state: np.ndarray, network: Network,
                    rng: np.random.Generator) -> np.ndarray:
        """Perturb the state vector at one cycle boundary."""
        return state


@dataclass(frozen=True)
class RateMismatch(FaultModel):
    """Independent log-normal mismatch on every rate constant.

    ``sigma`` is the log-space standard deviation; 0.25 corresponds to a
    typical one-sigma mismatch of ~28%.  This is the fault the paper
    claims immunity to (within-category variation), so the default
    suites expect it to be harmless.
    """

    sigma: float = 0.25
    kind = "rate_mismatch"

    def perturb_rates(self, rates, network, scheme, rng):
        if self.sigma < 0:
            raise FaultError("sigma must be non-negative")
        return rates * rng.lognormal(mean=0.0, sigma=self.sigma,
                                     size=rates.shape)


@dataclass(frozen=True)
class SeparationCompression(FaultModel):
    """Divide the fast/slow separation by ``factor``.

    The one axis the paper's guarantee *does* depend on.  The margin
    search in :mod:`repro.faults.margin` sweeps this factor to find
    where a circuit stops computing.
    """

    factor: float = 10.0
    kind = "separation_compression"

    def perturb_scheme(self, scheme, rng):
        return scheme.compressed(self.factor)


@dataclass(frozen=True)
class Leak(FaultModel):
    """Spurious zeroth-order production of signal-carrying species.

    Adds ``0 -> X`` at ``rate * k_slow`` for every species whose role is
    in ``roles`` -- the chemical analogue of a gate leaking output
    without input.  The rate is expressed relative to the slow category
    so the same model is meaningful under any scheme.
    """

    rate: float = 1e-3
    roles: tuple[str, ...] = ("signal", "aux")
    kind = "leak"

    def perturb_network(self, network, scheme, rng):
        if self.rate < 0:
            raise FaultError("leak rate must be non-negative")
        k = self.rate * scheme.slow
        for species in network.species:
            if species.role in self.roles:
                network.add_reaction(Reaction(
                    {}, {species: 1}, k, label=f"leak {species.name}"))


@dataclass(frozen=True)
class Dilution(FaultModel):
    """Global first-order decay ``X -> 0`` of every species.

    Models an open reactor (outflow) or spontaneous degradation; unlike
    :class:`Leak` it also erodes the clock and the indicators, so it
    attacks the protocol's conservation assumptions.
    """

    rate: float = 1e-4
    kind = "dilution"

    def perturb_network(self, network, scheme, rng):
        if self.rate < 0:
            raise FaultError("dilution rate must be non-negative")
        k = self.rate * scheme.slow
        for species in network.species:
            network.add_reaction(Reaction(
                {species: 1}, {}, k, label=f"dilution {species.name}"))


@dataclass(frozen=True)
class CopyNumberNoise(FaultModel):
    """Log-normal pipetting noise on every non-zero initial quantity."""

    sigma: float = 0.05
    kind = "copy_number_noise"

    def perturb_initial(self, initial, network, rng):
        if self.sigma < 0:
            raise FaultError("sigma must be non-negative")
        initial = initial.copy()
        nonzero = initial > 0
        initial[nonzero] *= rng.lognormal(
            mean=0.0, sigma=self.sigma, size=int(nonzero.sum()))
        return initial


@dataclass(frozen=True)
class SpeciesDeletion(FaultModel):
    """One species is simply missing at t=0.

    ``species`` names the victim; ``None`` picks uniformly among the
    species with non-zero initial quantity.  The species itself stays
    registered (indices must not shift) -- only its copies are gone.
    """

    species: str | None = None
    kind = "species_deletion"

    def perturb_initial(self, initial, network, rng):
        if self.species is not None:
            initial = initial.copy()
            initial[network.species_index(self.species)] = 0.0
            return initial
        candidates = np.nonzero(initial > 0)[0]
        if candidates.size == 0:
            return initial
        initial = initial.copy()
        initial[int(rng.choice(candidates))] = 0.0
        return initial


@dataclass(frozen=True)
class ClockGlitch(FaultModel):
    """Transient loss of clock molecules at one cycle boundary.

    At boundary ``cycle``, a fraction of every clock-role species is
    removed.  The machine drivers replenish the clock at the *next*
    boundary, so the glitch perturbs exactly one cycle -- a recoverable
    fault unless ``fraction`` is large enough to stall the oscillator.
    """

    cycle: int = 2
    fraction: float = 0.5
    kind = "clock_glitch"

    def on_boundary(self, cycle, state, network, rng):
        if not 0 <= self.fraction <= 1:
            raise FaultError("fraction must be in [0, 1]")
        if cycle != self.cycle:
            return state
        state = state.copy()
        for species in network.species_with_role("clock"):
            index = network.species_index(species)
            state[index] *= 1.0 - self.fraction
        return state


@dataclass(frozen=True)
class FaultSetup:
    """Everything a driver needs to simulate the faulted system."""

    network: Network
    scheme: RateScheme
    #: per-reaction numeric rates, or ``None`` when no model perturbed
    #: them (drivers then resolve the scheme as usual).
    rates: np.ndarray | None
    initial: np.ndarray


class FaultPlan:
    """An ordered set of fault models plus the randomness to apply them.

    A plan is a single-run object: :meth:`materialize` advances the
    per-model generators, so build a fresh plan (same models, same seed)
    for every trial that must reproduce the same perturbation.
    """

    def __init__(self, models, seed: int | np.random.SeedSequence | None = 0):
        self.models: tuple[FaultModel, ...] = tuple(models)
        for model in self.models:
            if not isinstance(model, FaultModel):
                raise FaultError(f"not a fault model: {model!r}")
        if isinstance(seed, np.random.SeedSequence):
            self.seed_sequence = seed
        else:
            self.seed_sequence = np.random.SeedSequence(seed)
        children = self.seed_sequence.spawn(len(self.models))
        self._rngs = [np.random.default_rng(child) for child in children]
        self._setup: FaultSetup | None = None

    @property
    def active(self) -> bool:
        return bool(self.models)

    def describe(self) -> list[dict]:
        return [model.describe() for model in self.models]

    def materialize(self, network: Network, scheme: RateScheme,
                    rates: np.ndarray | None = None) -> FaultSetup:
        """Apply every setup hook and return the faulted system.

        The input network is never mutated; the returned copy carries
        the perturbed reactions *and* the perturbed initial quantities
        (so ``setup.network.initial_vector()`` equals ``setup.initial``).
        """
        faulted = network.copy()
        names_before = list(faulted.species_names)

        for model, rng in zip(self.models, self._rngs):
            scheme = model.perturb_scheme(scheme, rng)
        for model, rng in zip(self.models, self._rngs):
            model.perturb_network(faulted, scheme, rng)
        if faulted.species_names != names_before:
            raise FaultError(
                "fault models must not add or remove species (indices "
                "computed against the pristine network would go stale); "
                f"species changed from {len(names_before)} to "
                f"{faulted.n_species}")

        base = np.asarray(rates, dtype=float) if rates is not None \
            else faulted.rate_vector(scheme)
        if base.shape != (faulted.n_reactions,):
            # Caller-supplied rates predate fault reactions: extend with
            # the scheme resolution of the added reactions.
            resolved = faulted.rate_vector(scheme)
            resolved[:base.size] = base
            base = resolved
        perturbed = base
        for model, rng in zip(self.models, self._rngs):
            perturbed = model.perturb_rates(perturbed, faulted, scheme, rng)
        rates_out = perturbed if (rates is not None
                                  or perturbed is not base) else None

        initial = faulted.initial_vector()
        for model, rng in zip(self.models, self._rngs):
            initial = model.perturb_initial(initial, faulted, rng)
        if np.any(initial < 0):
            raise FaultError("faulted initial quantities must stay "
                             "non-negative")
        for name, value in zip(faulted.species_names, initial):
            if value != faulted.get_initial(name):
                faulted.set_initial(name, float(value))

        self._setup = FaultSetup(network=faulted, scheme=scheme,
                                 rates=rates_out, initial=initial)
        return self._setup

    def on_boundary(self, cycle: int, state: np.ndarray,
                    network: Network) -> np.ndarray:
        """Apply every runtime hook at one cycle boundary."""
        for model, rng in zip(self.models, self._rngs):
            state = model.on_boundary(cycle, state, network, rng)
        return state
