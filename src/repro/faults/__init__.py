"""Fault injection and robustness campaigns.

The paper argues the three-phase protocol is robust because correctness
rests on a single coarse premise (fast reactions are fast relative to
slow ones).  This package turns that argument into a measurement:

- :mod:`repro.faults.models` -- perturbation models (rate mismatch,
  separation compression, leaks, dilution, copy-number noise, species
  deletion, clock glitches) applied to a network before or during
  simulation via :class:`FaultPlan`;
- :mod:`repro.faults.circuits` -- adapters that run a circuit under a
  plan and score it in the digital domain (bit errors vs the ideal
  machine, settling time, protocol health);
- :mod:`repro.faults.campaign` -- seeded Monte Carlo campaigns fanned
  over a process pool, bitwise reproducible serial vs parallel;
- :mod:`repro.faults.margin` -- bisection of the minimum fast/slow
  separation at which a circuit still computes.

Entry point: ``python -m repro robustness --circuit counter``.
"""

from repro.faults.campaign import (BASELINE, CampaignResult, ModelStats,
                                   RobustnessCampaign, TrialResult,
                                   default_suite)
from repro.faults.circuits import (CIRCUITS, CounterCircuit,
                                   MachineCircuit, TrialScore,
                                   make_circuit)
from repro.faults.margin import (MarginProbe, MarginResult,
                                 robustness_margin)
from repro.faults.models import (ClockGlitch, CopyNumberNoise, Dilution,
                                 FaultModel, FaultPlan, FaultSetup, Leak,
                                 RateMismatch, SeparationCompression,
                                 SpeciesDeletion)

__all__ = [
    "BASELINE",
    "CIRCUITS",
    "CampaignResult",
    "ClockGlitch",
    "CopyNumberNoise",
    "CounterCircuit",
    "Dilution",
    "FaultModel",
    "FaultPlan",
    "FaultSetup",
    "Leak",
    "MachineCircuit",
    "MarginProbe",
    "MarginResult",
    "ModelStats",
    "RateMismatch",
    "RobustnessCampaign",
    "SeparationCompression",
    "SpeciesDeletion",
    "TrialResult",
    "TrialScore",
    "default_suite",
    "make_circuit",
    "robustness_margin",
]
