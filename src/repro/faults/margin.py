"""Robustness margin: the minimum separation at which a circuit computes.

The paper's guarantee has one quantitative premise -- fast reactions are
fast *relative to* slow ones -- so the natural robustness measure of a
circuit is the smallest fast/slow separation ratio at which it still
computes correctly.  :func:`robustness_margin` measures it by geometric
bisection: starting from a separation known to pass (the nominal scheme)
and one known to fail, it halves the interval in log space, running a
small batch of seeded trials at each probe point.

Each failing probe carries a ``REPRO-R***`` classification (from the
trial scores), so the result reports not just *where* the circuit breaks
but *how* -- residual mass at boundaries (R104), a stalled rotation
(R102), mushy logic levels (R103)...
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultError
from repro.faults.models import FaultPlan


@dataclass(frozen=True)
class MarginProbe:
    """One bisection evaluation: a trial batch at one separation."""

    separation: float
    ok: bool
    failures: int
    trials: int
    classifications: dict[str, int]

    def to_dict(self) -> dict:
        return {"separation": self.separation, "ok": self.ok,
                "failures": self.failures, "trials": self.trials,
                "classifications": dict(self.classifications)}


@dataclass(frozen=True)
class MarginResult:
    """Outcome of the bisection.

    ``margin`` is the smallest separation observed to pass;
    ``failed_at`` the largest observed to fail.  The true breaking point
    lies between them (``failed_at < s* <= margin``, up to trial noise).
    """

    margin: float
    failed_at: float
    classification: str | None
    probes: list[MarginProbe] = field(default_factory=list)

    @property
    def n_evaluations(self) -> int:
        return len(self.probes)

    def to_dict(self) -> dict:
        def finite(value):
            return value if np.isfinite(value) else None

        return {"margin": finite(self.margin),
                "failed_at": finite(self.failed_at),
                "classification": self.classification,
                "evaluations": self.n_evaluations,
                "probes": [probe.to_dict() for probe in self.probes]}


def _probe(adapter, models, separation: float, seed_sequence,
           trials: int) -> MarginProbe:
    """Run one seeded trial batch at one separation."""
    nominal = adapter.nominal_scheme()
    scheme = nominal.compressed(nominal.separation / separation)
    children = seed_sequence.spawn(2 * trials)
    failures = 0
    classifications: Counter[str] = Counter()
    for i in range(trials):
        plan = FaultPlan(models, seed=children[2 * i]) if models else None
        rng = np.random.default_rng(children[2 * i + 1])
        score = adapter.evaluate(scheme, plan=plan, rng=rng)
        if not score.ok:
            failures += 1
            classifications[score.classification or "unclassified"] += 1
    return MarginProbe(separation=float(separation), ok=failures == 0,
                       failures=failures, trials=trials,
                       classifications=dict(classifications))


def robustness_margin(adapter, models=(), seed=0, trials: int = 4,
                      separation_lo: float = 2.0,
                      separation_hi: float | None = None,
                      tolerance: float = 1.5,
                      max_evaluations: int = 24) -> MarginResult:
    """Bisect the smallest passing fast/slow separation.

    Parameters
    ----------
    adapter:
        a circuit adapter from :mod:`repro.faults.circuits`.
    models:
        fault models layered on top of the separation sweep (each probe
        trial gets a fresh seeded plan); empty probes the pure
        separation axis.
    trials:
        seeded trials per probe point; a point fails if *any* trial
        fails (the margin is a worst-case bound).
    tolerance:
        stop when the pass/fail bracket ratio drops below this.
    """
    if tolerance <= 1.0:
        raise FaultError("tolerance must exceed 1")
    nominal = adapter.nominal_scheme()
    hi = float(separation_hi or nominal.separation)
    lo = float(separation_lo)
    if not lo < hi:
        raise FaultError(f"need separation_lo < separation_hi, "
                         f"got {lo} >= {hi}")
    root = np.random.SeedSequence(seed)
    probes: list[MarginProbe] = []

    top = _probe(adapter, models, hi, root.spawn(1)[0], trials)
    probes.append(top)
    if not top.ok:
        # Broken even at nominal separation: no margin to speak of.
        classification = _dominant(probes)
        return MarginResult(margin=float("inf"), failed_at=hi,
                            classification=classification, probes=probes)
    bottom = _probe(adapter, models, lo, root.spawn(1)[0], trials)
    probes.append(bottom)
    if bottom.ok:
        # Still computing at the floor: margin is below the probe range.
        return MarginResult(margin=lo, failed_at=float("nan"),
                            classification=None, probes=probes)

    while hi / lo > tolerance and len(probes) < max_evaluations:
        mid = float(np.sqrt(hi * lo))
        probe = _probe(adapter, models, mid, root.spawn(1)[0], trials)
        probes.append(probe)
        if probe.ok:
            hi = mid
        else:
            lo = mid
    return MarginResult(margin=hi, failed_at=lo,
                        classification=_dominant(probes), probes=probes)


def _dominant(probes) -> str | None:
    """Most common failure classification across all failing probes."""
    counts: Counter[str] = Counter()
    for probe in probes:
        counts.update(probe.classifications)
    counts.pop("unclassified", None)
    if not counts:
        return None
    return counts.most_common(1)[0][0]
