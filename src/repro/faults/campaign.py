"""Monte Carlo robustness campaigns.

A :class:`RobustnessCampaign` fans seeded fault-injection trials over
:class:`~repro.crn.simulation.sweep.ParallelSweepRunner`: for every
fault model (plus an unfaulted baseline) it runs ``trials`` independent
trials, scores each with the digital-domain metrics from
:mod:`repro.faults.circuits`, classifies failures with ``REPRO-R***``
codes, and finally bisects the circuit's robustness margin (see
:mod:`repro.faults.margin`).

Reproducibility contract: every trial's randomness (one
:class:`numpy.random.SeedSequence` for the fault plan, one for the
simulator) is spawned from the campaign's root seed *before* any work
is distributed, trials never share state, and results are collected in
payload order -- so a campaign's result is a pure function of
``(circuit, models, trials, seed, separation)`` and is bitwise
identical whether it ran serially or on a process pool.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.crn.simulation.sweep import ParallelSweepRunner
from repro.errors import FaultError
from repro.faults.circuits import TrialScore, make_circuit
from repro.faults.margin import MarginResult, robustness_margin
from repro.faults.models import (ClockGlitch, CopyNumberNoise, Dilution,
                                 FaultModel, FaultPlan, Leak, RateMismatch)

#: Baseline pseudo-model name (trial with no fault injected).
BASELINE = "baseline"

#: Default fault suites per circuit.  Rates are deliberately at the
#: scale a careful wet implementation could reach: the paper's claim is
#: that the protocol *tolerates* them, so the expected campaign outcome
#: at nominal separation is zero bit errors -- the margin search, not
#: the suite, is what probes the breaking point.
_MACHINE_SUITE = (RateMismatch(sigma=0.15), Leak(rate=1e-4),
                  Dilution(rate=1e-5), CopyNumberNoise(sigma=0.02),
                  # The clock tolerates mass loss only up to the
                  # boundary-fraction headroom (~10%); beyond it the
                  # boundary threshold becomes unreachable and the
                  # rotation stalls (REPRO-R102) -- measured in the
                  # fault-model tests.  5% is inside the recoverable
                  # band.
                  ClockGlitch(cycle=2, fraction=0.05))

_DEFAULT_SUITES: dict[str, tuple[FaultModel, ...]] = {
    "counter": (RateMismatch(sigma=0.3), Leak(rate=1e-5),
                Dilution(rate=1e-5), CopyNumberNoise(sigma=0.05)),
    "ma": _MACHINE_SUITE,
    "iir": _MACHINE_SUITE,
}


def default_suite(circuit: str) -> tuple[FaultModel, ...]:
    """The default fault-model suite for a registered circuit."""
    try:
        return _DEFAULT_SUITES[circuit]
    except KeyError:
        raise FaultError(f"no default fault suite for circuit "
                         f"{circuit!r}; choose from "
                         f"{sorted(_DEFAULT_SUITES)}") from None


@dataclass(frozen=True)
class TrialResult:
    """One scored trial of one fault model."""

    model: str
    trial: int
    score: TrialScore

    def to_dict(self) -> dict:
        return {"model": self.model, "trial": self.trial,
                "score": self.score.to_dict()}


@dataclass(frozen=True)
class ModelStats:
    """Aggregate over one fault model's trials."""

    model: str
    trials: int
    failures: int
    bit_errors: int
    bits_total: int
    bit_error_rate: float
    mean_settling: float
    worst_residual: float
    classifications: dict[str, int]

    def to_dict(self) -> dict:
        return {"model": self.model, "trials": self.trials,
                "failures": self.failures, "bit_errors": self.bit_errors,
                "bits_total": self.bits_total,
                "bit_error_rate": self.bit_error_rate,
                "mean_settling": self.mean_settling,
                "worst_residual": self.worst_residual,
                "classifications": dict(self.classifications)}


@dataclass
class CampaignResult:
    """Full campaign outcome: per-trial scores, per-model aggregates,
    and the measured robustness margin."""

    circuit: str
    separation: float
    seed: int
    trials: list[TrialResult]
    stats: list[ModelStats] = field(default_factory=list)
    margin: MarginResult | None = None

    @property
    def bit_errors(self) -> int:
        return sum(t.score.bit_errors for t in self.trials)

    @property
    def failures(self) -> int:
        return sum(1 for t in self.trials if not t.score.ok)

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "separation": self.separation,
            "seed": self.seed,
            "n_trials": len(self.trials),
            "bit_errors": self.bit_errors,
            "failures": self.failures,
            "stats": [s.to_dict() for s in self.stats],
            "margin": self.margin.to_dict() if self.margin else None,
            "trials": [t.to_dict() for t in self.trials],
        }

    def render(self) -> str:
        lines = [f"robustness campaign: circuit={self.circuit} "
                 f"separation={self.separation:g} seed={self.seed}",
                 f"  trials: {len(self.trials)}, failures: "
                 f"{self.failures}, bit errors: {self.bit_errors}", ""]
        header = (f"  {'model':<24} {'trials':>6} {'fail':>5} "
                  f"{'bit errs':>8} {'BER':>9} {'classification':<16}")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for stat in self.stats:
            top = max(stat.classifications,
                      key=stat.classifications.get, default="-") \
                if stat.classifications else "-"
            lines.append(
                f"  {stat.model:<24} {stat.trials:>6} "
                f"{stat.failures:>5} {stat.bit_errors:>8} "
                f"{stat.bit_error_rate:>9.4f} {top:<16}")
        if self.margin is not None:
            lines.append("")
            if np.isfinite(self.margin.margin):
                lines.append(
                    f"  robustness margin: separation "
                    f"{self.margin.margin:.1f} still computes; first "
                    f"failure at {self.margin.failed_at:.1f} "
                    f"({self.margin.classification or 'unclassified'}, "
                    f"{self.margin.n_evaluations} probe batches)")
            else:
                lines.append("  robustness margin: circuit fails at "
                             "nominal separation")
        return "\n".join(lines)


def _trial_worker(payload: tuple) -> TrialResult:
    """Top-level (picklable) worker: run and score one trial.

    The payload carries everything the trial needs -- including its two
    pre-spawned seed sequences -- so the result does not depend on which
    process runs it.
    """
    (circuit_name, circuit_kwargs, model, separation,
     plan_seed, sim_seed, trial_index) = payload
    adapter = make_circuit(circuit_name, **circuit_kwargs)
    nominal = adapter.nominal_scheme()
    scheme = nominal if separation is None else \
        nominal.compressed(nominal.separation / separation)
    plan = FaultPlan([model], seed=plan_seed) if model is not None else None
    rng = np.random.default_rng(sim_seed)
    score = adapter.evaluate(scheme, plan=plan, rng=rng)
    return TrialResult(model=model.kind if model else BASELINE,
                       trial=trial_index, score=score)


class RobustnessCampaign:
    """Fan seeded fault-injection trials over a process pool.

    Parameters
    ----------
    circuit:
        registered circuit name (``counter``, ``ma``, ``iir``).
    models:
        fault models to campaign over (``None`` takes the circuit's
        default suite).  An unfaulted baseline model is always included.
    trials:
        trials per model.
    separation:
        fast/slow separation to run at (``None`` = the circuit's
        nominal scheme).
    measure_margin:
        also bisect the robustness margin (serial, deterministic).
    """

    def __init__(self, circuit: str = "counter",
                 models=None, trials: int = 20, seed: int = 0,
                 separation: float | None = None,
                 n_workers: int | None = None,
                 circuit_kwargs: dict | None = None,
                 measure_margin: bool = True,
                 margin_trials: int = 4):
        self.circuit = circuit
        self.models = tuple(models) if models is not None \
            else default_suite(circuit)
        self.trials = int(trials)
        if self.trials < 1:
            raise FaultError("need at least one trial per model")
        self.seed = int(seed)
        self.separation = separation
        self.n_workers = n_workers
        self.circuit_kwargs = dict(circuit_kwargs or {})
        self.measure_margin = measure_margin
        self.margin_trials = int(margin_trials)

    def run(self) -> CampaignResult:
        model_list: list[FaultModel | None] = [None, *self.models]
        root = np.random.SeedSequence(self.seed)
        children = root.spawn(2 * len(model_list) * self.trials)
        payloads = []
        index = 0
        for model in model_list:
            for trial in range(self.trials):
                payloads.append((self.circuit, self.circuit_kwargs, model,
                                 self.separation, children[index],
                                 children[index + 1], trial))
                index += 2
        results = ParallelSweepRunner(self.n_workers).map(
            _trial_worker, payloads)
        stats = [self._aggregate(name, results)
                 for name in [BASELINE] + [m.kind for m in self.models]]
        margin = None
        if self.measure_margin:
            margin = robustness_margin(
                make_circuit(self.circuit, **self.circuit_kwargs),
                models=(), seed=self.seed, trials=self.margin_trials)
        nominal = make_circuit(self.circuit,
                               **self.circuit_kwargs).nominal_scheme()
        return CampaignResult(
            circuit=self.circuit,
            separation=float(self.separation if self.separation is not None
                             else nominal.separation),
            seed=self.seed, trials=results, stats=stats, margin=margin)

    @staticmethod
    def _aggregate(model: str, results: list[TrialResult]) -> ModelStats:
        scores = [t.score for t in results if t.model == model]
        classifications: Counter[str] = Counter()
        for score in scores:
            if not score.ok:
                classifications[score.classification or "unclassified"] += 1
        bits_total = sum(s.bits_total for s in scores)
        bit_errors = sum(s.bit_errors for s in scores)
        finite = [s.settling_time for s in scores
                  if np.isfinite(s.settling_time)]
        return ModelStats(
            model=model, trials=len(scores),
            failures=sum(1 for s in scores if not s.ok),
            bit_errors=bit_errors, bits_total=bits_total,
            bit_error_rate=bit_errors / bits_total if bits_total else 0.0,
            mean_settling=float(np.mean(finite)) if finite else 0.0,
            worst_residual=max((s.boundary_residual for s in scores),
                               default=0.0),
            classifications=dict(classifications))
