"""Structured telemetry records shared by the tracer, sinks and report.

All records live on the *simulated-time* axis: a span covers
``[t0, t1]`` in simulation time units, and wall-clock cost (when
measured) rides along in ``args["wall"]``.  Keeping one coherent time
axis is what makes the Chrome-trace view meaningful: cycle, phase,
transfer and solver spans all nest on the same timeline the chemistry
ran on.

The JSONL wire format is one object per line::

    {"type": "span",  "name": "cycle", "cat": "machine",
     "t0": 0.0, "t1": 3.41, "args": {"cycle": 0, "wall": 0.12}}
    {"type": "event", "name": "boundary", "cat": "machine",
     "t": 3.41, "args": {"cycle": 0}}
    {"type": "diag",  "code": "REPRO-R101", ...}
    {"type": "metrics", "values": {...}}

See ``docs/observability.md`` for the full catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class SpanRecord:
    """A named interval on the simulated timeline."""

    name: str
    cat: str
    t0: float
    t1: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def contains(self, other: "SpanRecord", slack: float = 1e-9) -> bool:
        """Whether ``other`` nests inside this span (with tolerance)."""
        return (self.t0 - slack <= other.t0
                and other.t1 <= self.t1 + slack)

    def to_dict(self) -> dict:
        payload = {"type": "span", "name": self.name, "cat": self.cat,
                   "t0": self.t0, "t1": self.t1}
        if self.args:
            payload["args"] = self.args
        return payload


@dataclass(slots=True)
class EventRecord:
    """A named instant on the simulated timeline."""

    name: str
    cat: str
    t: float
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {"type": "event", "name": self.name, "cat": self.cat,
                   "t": self.t}
        if self.args:
            payload["args"] = self.args
        return payload


@dataclass(slots=True)
class MetricsRecord:
    """A snapshot of a :class:`~repro.obs.metrics.MetricsRegistry`."""

    values: dict

    def to_dict(self) -> dict:
        return {"type": "metrics", "values": self.values}


@dataclass(slots=True)
class CycleSpan:
    """One machine cycle: the single source of truth for boundary times.

    The machine drivers record one of these per completed cycle;
    :class:`~repro.core.machine.MachineRun` derives ``boundary_times``
    and ``mean_cycle_time`` from them, and the tracer emits them as
    ``cycle`` spans -- so the run result and the trace can never
    disagree about where the cycle boundaries were.
    """

    index: int
    t0: float
    t1: float
    #: wall-clock seconds spent computing the cycle (0.0 if unmeasured).
    wall: float = 0.0

    @property
    def duration(self) -> float:
        return self.t1 - self.t0
