"""Counters, gauges and histograms for solver and protocol effort.

A :class:`MetricsRegistry` is handed to simulators and machine drivers
via their ``metrics=`` parameter; they record solver effort (RHS
evaluations, accepted/rejected steps, event firings), SSA reaction
firings per channel, and wall time per cycle/phase.  ``to_dict()``
produces a JSON-serialisable snapshot (schema-versioned) that the
benchmarks write next to their results and the tracer embeds in traces.

:data:`NULL_METRICS` mirrors the null tracer: instruments are shared
no-op singletons, so the disabled path allocates nothing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError

#: Version of the ``to_dict`` / JSON snapshot schema.
METRICS_SCHEMA_VERSION = 1

#: Histograms keep at most this many raw samples for percentiles.
_HISTOGRAM_CAP = 65536


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Distribution summary of observed samples.

    Raw samples are kept (up to a cap) so the snapshot can report
    percentiles; past the cap only count/sum/min/max stay exact and the
    percentiles describe the first samples.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_samples")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._samples) < _HISTOGRAM_CAP:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile of the retained samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        position = (len(ordered) - 1) * q
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0}
        return {"count": self.count, "sum": self.total,
                "mean": self.mean, "min": self.minimum,
                "max": self.maximum, "p50": self.percentile(0.5),
                "p90": self.percentile(0.9)}


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, created on first use."""

    __slots__ = ("_counters", "_gauges", "_histograms")
    enabled = True

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    # -- convenience ----------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: gauge.value
                       for name, gauge in sorted(self._gauges.items())},
            "histograms": {name: histogram.summary()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }

    def write_json(self, path) -> Path:
        path = Path(path)
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=1)
                handle.write("\n")
        except OSError as exc:
            raise ReproError(f"cannot write metrics file {path}: "
                             f"{exc.strerror or exc}") from exc
        return path


class NullMetrics:
    """Disabled registry: instruments are shared no-op singletons."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


#: Process-wide disabled registry; instrumented code defaults to this.
NULL_METRICS = NullMetrics()


def ensure_metrics(metrics) -> MetricsRegistry | NullMetrics:
    """Normalize an optional metrics argument to a usable instance."""
    return metrics if metrics is not None else NULL_METRICS
