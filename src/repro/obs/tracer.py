"""The tracer: structured span/event emission with a no-op fast path.

Two implementations share one interface:

:class:`Tracer`
    the real thing; forwards records to a sink.
:class:`NullTracer`
    every method is a ``pass``; :data:`NULL_TRACER` is the process-wide
    singleton.  Instrumented code holds a tracer unconditionally and
    guards hot work with ``if tracer.enabled:`` -- with the null tracer
    the guard is a single attribute read and **no record objects are
    allocated**, which the test suite checks with ``tracemalloc``.

Chemistry spans are emitted *retroactively* (phase windows are only
known after a segment has been integrated), so the primitive is
``emit_span(name, cat, t0, t1, args)`` rather than a context manager.
"""

from __future__ import annotations

from repro.obs.records import (CycleSpan, EventRecord, MetricsRecord,
                               SpanRecord)
from repro.obs.sinks import MemorySink


class Tracer:
    """Emits structured records into a sink.

    Parameters
    ----------
    sink:
        a :mod:`repro.obs.sinks` sink; defaults to an in-memory sink.
    """

    __slots__ = ("sink", "enabled")

    def __init__(self, sink=None):
        self.sink = sink if sink is not None else MemorySink()
        self.enabled = True

    # -- emission -------------------------------------------------------------

    def emit_span(self, name: str, cat: str, t0: float, t1: float,
                  args: dict | None = None) -> None:
        self.sink.write(SpanRecord(name, cat, float(t0), float(t1),
                                   args or {}))

    def emit_event(self, name: str, cat: str, t: float,
                   args: dict | None = None) -> None:
        self.sink.write(EventRecord(name, cat, float(t), args or {}))

    def emit_cycle(self, span: CycleSpan) -> None:
        args = {"cycle": span.index}
        if span.wall:
            args["wall"] = span.wall
        self.emit_span("cycle", "machine", span.t0, span.t1, args)

    def emit_diagnostic(self, diagnostic) -> None:
        """Record a runtime diagnostic (see :mod:`repro.obs.monitors`)."""
        self.sink.write(diagnostic)

    def emit_metrics(self, metrics) -> None:
        """Snapshot a metrics registry into the trace (usually last)."""
        if metrics is not None and metrics.enabled:
            self.sink.write(MetricsRecord(metrics.to_dict()))

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer:
    """Disabled tracer: every emission is a no-op, nothing is allocated."""

    __slots__ = ()
    enabled = False
    sink = None

    def emit_span(self, name, cat, t0, t1, args=None) -> None:
        pass

    def emit_event(self, name, cat, t, args=None) -> None:
        pass

    def emit_cycle(self, span) -> None:
        pass

    def emit_diagnostic(self, diagnostic) -> None:
        pass

    def emit_metrics(self, metrics) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: Process-wide disabled tracer; instrumented code defaults to this.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer) -> Tracer | NullTracer:
    """Normalize an optional tracer argument to a usable instance."""
    return tracer if tracer is not None else NULL_TRACER
