"""Failure classification for robustness trials.

A failed trial carries heterogeneous evidence -- a stalled driver, a
batch of :class:`~repro.obs.monitors.RuntimeDiagnostic` findings, raw
measured health metrics -- and the campaigns need one ``REPRO-R***``
label per failure so results aggregate.  :func:`classify_failure`
reduces the evidence to the single most *causal* code: residual mass at
the boundary (R104) explains overlap and bit errors downstream of it,
overlap (R101) explains mushy indicators, and so on, which is why the
priority order below is not the numeric order.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.obs.monitors import MonitorConfig, RuntimeDiagnostic

#: Most-causal-first order used to pick one code from many findings.
#: Protocol-health monitors (R1xx) outrank temporal assertions (A9xx):
#: a chemistry-level finding explains the digital symptom an assertion
#: observed, and the A-code order mirrors the monitors' causality
#: (broken invariant before phase stability before sequencing).
PRIORITY = ("REPRO-R104", "REPRO-R101", "REPRO-R103", "REPRO-R105",
            "REPRO-R102",
            "REPRO-A901", "REPRO-A902", "REPRO-A903", "REPRO-A904",
            "REPRO-A905")


def classify_failure(diagnostics: Iterable[RuntimeDiagnostic] = (),
                     *,
                     stalled: bool = False,
                     bit_error_rate: float = 0.0,
                     boundary_residual: float | None = None,
                     overlap: float | None = None,
                     unsettled: int = 0,
                     config: MonitorConfig | None = None) -> str | None:
    """One runtime code (``REPRO-R***`` / ``REPRO-A9**``) for a failed
    trial, or ``None`` if the evidence does not indicate a failure.

    Parameters beyond ``diagnostics`` are raw measurements for drivers
    that do not run a :class:`~repro.obs.monitors.ProtocolMonitor` (the
    counter's SSA path): residual signal fraction at readout, phase
    overlap, unsettled bit reads.
    """
    if stalled:
        # The driver never reached a boundary: the rotation itself broke.
        return "REPRO-R102"
    codes = {d.code for d in diagnostics}
    for code in PRIORITY:
        if code in codes:
            return code
    config = config or MonitorConfig()
    if boundary_residual is not None \
            and boundary_residual > config.boundary_residual_warn:
        return "REPRO-R104"
    if overlap is not None and overlap > config.phase_overlap_warn:
        return "REPRO-R101"
    if unsettled > 0 or bit_error_rate > 0:
        # Wrong or unreadable logic levels with no upstream protocol
        # finding: the levels themselves are mushy.
        return "REPRO-R103"
    return None
