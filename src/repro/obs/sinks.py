"""Trace sinks: where :class:`~repro.obs.tracer.Tracer` records go.

Three sinks cover the use cases:

:class:`MemorySink`
    keeps records in a list -- the test-suite sink.
:class:`JsonlSink`
    streams one JSON object per line -- the canonical on-disk format,
    consumed by ``python -m repro report``.
:class:`ChromeTraceSink`
    writes the Chrome trace-event format (a JSON array of complete
    events) loadable in ``chrome://tracing`` / Perfetto.

``chrome_events`` converts raw record dicts to trace events, so a JSONL
trace can be exported to the Chrome format after the fact
(``repro report trace.jsonl --chrome trace.json``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError

#: Simulated-time units to Chrome-trace microseconds: one slow time unit
#: renders as one millisecond, so a ~3-unit cycle is comfortably visible.
CHROME_TIME_SCALE = 1e3

#: Chrome "thread" lanes by record category: protocol structure (cycle /
#: phase / transfer) must share one lane so complete events nest.
_CHROME_LANES = {"machine": 1, "protocol": 1, "handshake": 1,
                 "solver": 2, "monitor": 3, "diag": 3}


class TraceWriteError(ReproError):
    """Raised when a trace or metrics file cannot be written."""


class MemorySink:
    """Keeps records in memory; ``records`` holds the dataclasses."""

    def __init__(self):
        self.records = []
        self.closed = False

    def write(self, record) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True

    def dicts(self) -> list[dict]:
        return [record.to_dict() for record in self.records]


class JsonlSink:
    """Streams records to a file, one JSON object per line."""

    def __init__(self, path):
        self.path = Path(path)
        try:
            self._handle = open(  # noqa: SIM115 - long-lived stream handle
                self.path, "w", encoding="utf-8")
        except OSError as exc:
            raise TraceWriteError(
                f"cannot write trace file {self.path}: "
                f"{exc.strerror or exc}") from exc
        self.closed = False

    def write(self, record) -> None:
        json.dump(record.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")

    def close(self) -> None:
        if not self.closed:
            self._handle.close()
            self.closed = True


class ChromeTraceSink:
    """Buffers records and writes a Chrome trace-event JSON on close."""

    def __init__(self, path):
        self.path = Path(path)
        self._records: list[dict] = []
        self.closed = False
        # Validate writability eagerly so a bad path fails at startup,
        # not after the (possibly long) run being traced.
        try:
            with open(self.path, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            raise TraceWriteError(
                f"cannot write trace file {self.path}: "
                f"{exc.strerror or exc}") from exc

    def write(self, record) -> None:
        self._records.append(record.to_dict())

    def close(self) -> None:
        if self.closed:
            return
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(chrome_events(self._records), handle, indent=1)
        self.closed = True


def chrome_events(records: list[dict]) -> list[dict]:
    """Convert record dicts (JSONL schema) to Chrome trace events."""
    events = [
        {"ph": "M", "pid": 1, "tid": lane, "name": "thread_name",
         "args": {"name": label}}
        for label, lane in (("protocol", 1), ("solver", 2),
                            ("monitors", 3))
    ]
    for record in records:
        kind = record.get("type")
        cat = record.get("cat", "diag")
        lane = _CHROME_LANES.get(cat, 3)
        args = record.get("args", {})
        if kind == "span":
            duration = (record["t1"] - record["t0"]) * CHROME_TIME_SCALE
            events.append({
                "name": record["name"], "cat": cat, "ph": "X",
                "ts": record["t0"] * CHROME_TIME_SCALE,
                "dur": max(duration, 1e-3),
                "pid": 1, "tid": lane, "args": args})
        elif kind == "event":
            events.append({
                "name": record["name"], "cat": cat, "ph": "i",
                "ts": record["t"] * CHROME_TIME_SCALE,
                "s": "t", "pid": 1, "tid": lane, "args": args})
        elif kind == "diag":
            events.append({
                "name": record.get("code", "diagnostic"), "cat": "diag",
                "ph": "i", "ts": record.get("t", 0.0) * CHROME_TIME_SCALE,
                "s": "g", "pid": 1, "tid": _CHROME_LANES["diag"],
                "args": {"message": record.get("message", "")}})
        # metrics snapshots have no timeline representation
    return events
