"""Trace summariser behind ``python -m repro report <trace.jsonl>``.

Reads a JSONL trace (the :class:`~repro.obs.sinks.JsonlSink` format),
aggregates it into human-readable sections -- cycle timing and jitter,
phase share, phase-overlap and other monitor metrics, solver effort,
diagnostics -- and optionally exports the Chrome trace-event view.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.obs.sinks import chrome_events

#: Record kinds the summariser understands; anything else is counted
#: and skipped with a warning (forward compatibility with newer traces).
KNOWN_KINDS = ("span", "event", "diag", "metrics", "wave")


def load_records(path) -> list[dict]:
    """Parse one record dict per non-empty JSONL line.

    A malformed *final* line is tolerated with a warning: a process
    crash (or a still-running writer) leaves the trace truncated
    mid-record, and the intact prefix is exactly what a post-mortem
    needs to summarise.  Malformed lines anywhere else still raise --
    they mean corruption, not truncation.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path}: "
                         f"{exc.strerror or exc}") from exc
    numbered = [(line_no, line.strip()) for line_no, line
                in enumerate(text.splitlines(), start=1)
                if line.strip()]
    records = []
    for position, (line_no, line) in enumerate(numbered):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if position == len(numbered) - 1:
                warnings.warn(
                    f"{path}:{line_no}: dropping truncated trailing "
                    f"record ({exc.msg}); the trace was cut off "
                    f"mid-write", RuntimeWarning, stacklevel=2)
                break
            raise ReproError(
                f"{path}:{line_no}: not a JSONL trace record ({exc.msg})") from exc
        if not isinstance(record, dict):
            raise ReproError(f"{path}:{line_no}: trace record is not an "
                             f"object")
        records.append(record)
    if not records:
        raise ReproError(f"{path}: empty trace")
    return records


def write_chrome(records: list[dict], path) -> Path:
    """Export records as a Chrome trace-event JSON file."""
    path = Path(path)
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(chrome_events(records), handle, indent=1)
    except OSError as exc:
        raise ReproError(f"cannot write Chrome trace {path}: "
                         f"{exc.strerror or exc}") from exc
    return path


# -- aggregation --------------------------------------------------------------


def _spans(records, cat=None, name=None):
    for record in records:
        if record.get("type") != "span":
            continue
        if cat is not None and record.get("cat") != cat:
            continue
        if name is not None and record.get("name") != name:
            continue
        yield record


def _monitor_values(records, name):
    return [record["args"]["value"] for record in records
            if record.get("type") == "event"
            and record.get("name") == f"monitor.{name}"
            and "value" in record.get("args", {})]


def summarize(records: list[dict]) -> str:
    """Render the trace summary (the ``repro report`` body)."""
    lines: list[str] = []

    counts: dict[str, int] = {}
    unknown: dict[str, int] = {}
    for record in records:
        kind = record.get("type", "?")
        if kind not in KNOWN_KINDS:
            unknown[kind] = unknown.get(kind, 0) + 1
            continue
        key = record.get("name", record.get("code", "?")) \
            if kind in ("span", "event") else kind
        label = f"{kind}:{key}" if kind in ("span", "event") else kind
        counts[label] = counts.get(label, 0) + 1
    lines.append("records")
    for label in sorted(counts):
        lines.append(f"  {label:32s} {counts[label]}")
    if unknown:
        total = sum(unknown.values())
        kinds = ", ".join(f"{kind}={n}" for kind, n
                          in sorted(unknown.items()))
        lines.append(f"  warning: skipped {total} record(s) of unknown "
                     f"kind ({kinds})")

    lines.extend(_cycle_section(records))
    lines.extend(_phase_section(records))
    lines.extend(_wave_section(records))
    lines.extend(_monitor_section(records))
    lines.extend(_solver_section(records))
    lines.extend(_diagnostics_section(records))
    return "\n".join(lines)


def _wave_section(records) -> list[str]:
    """Waveform summary: per-signal change counts plus assertion tally."""
    waves = [record for record in records
             if record.get("type") == "wave"]
    assertion_diags = [record for record in records
                       if record.get("type") == "diag"
                       and str(record.get("code", "")).startswith(
                           "REPRO-A")]
    if not waves and not assertion_diags:
        return []
    lines = ["", "waveform"]
    if waves:
        per_signal: dict[str, int] = {}
        t_final = 0.0
        for record in waves:
            name = record.get("signal", "?")
            per_signal[name] = per_signal.get(name, 0) + 1
            t_final = max(t_final, float(record.get("t", 0.0)))
        lines.append(f"  {len(per_signal)} signal(s), {len(waves)} "
                     f"change(s), horizon {t_final:.4g} time units")
        for name in sorted(per_signal):
            lines.append(f"    {name:30s} {per_signal[name]} change(s)")
    if assertion_diags:
        lines.append(f"  temporal assertions: "
                     f"{len(assertion_diags)} violation(s)")
    else:
        lines.append("  temporal assertions: no violations recorded")
    return lines


def _cycle_section(records) -> list[str]:
    cycles = list(_spans(records, name="cycle"))
    if not cycles:
        return []
    periods = np.array([span["t1"] - span["t0"] for span in cycles])
    lines = ["", "cycles",
             f"  count                {len(cycles)}",
             f"  mean period          {periods.mean():.4f} time units",
             f"  period range         {periods.min():.4f} .. "
             f"{periods.max():.4f}"]
    if len(cycles) >= 3:
        jitter = float(np.std(periods) / np.mean(periods))
        lines.append(f"  clock jitter         {jitter:.2%} "
                     f"(relative std of period)")
    walls = [span.get("args", {}).get("wall") for span in cycles]
    walls = [w for w in walls if w is not None]
    if walls:
        lines.append(f"  wall time            {sum(walls):.3f} s total, "
                     f"{sum(walls) / len(walls):.3f} s/cycle")
    return lines


def _phase_section(records) -> list[str]:
    phases: dict[str, float] = {}
    for span in _spans(records, cat="protocol"):
        name = span["name"]
        if not name.startswith("phase:"):
            continue
        phases[name[6:]] = phases.get(name[6:], 0.0) \
            + (span["t1"] - span["t0"])
    if not phases:
        return []
    total = sum(phases.values())
    lines = ["", "phase share (of traced phase time)"]
    for color in ("red", "green", "blue"):
        if color in phases:
            lines.append(f"  {color:6s} {phases[color]:10.4f} time units "
                         f"({phases[color] / total:.1%})")
    transfers = [span for span in _spans(records, cat="protocol")
                 if span["name"].startswith("transfer:")]
    if transfers:
        durations = np.array([s["t1"] - s["t0"] for s in transfers])
        lines.append(f"  transfers: {len(transfers)} spans, mean "
                     f"hand-off {durations.mean():.4f} time units")
    return lines


def _monitor_section(records) -> list[str]:
    lines: list[str] = []
    overlap = _monitor_values(records, "phase_overlap")
    if overlap:
        lines.extend(["", "phase overlap (drain flux outside the "
                          "dominant colour)",
                      f"  mean {np.mean(overlap):.4f}   peak "
                      f"{np.max(overlap):.4f}   cycles {len(overlap)}"])
    residual = _monitor_values(records, "boundary_residual")
    if residual:
        lines.append(f"  boundary residual: mean "
                     f"{np.mean(residual):.4f}, peak "
                     f"{np.max(residual):.4f}")
    drift = _monitor_values(records, "conservation_drift")
    if drift:
        lines.append(f"  conservation drift: mean "
                     f"{np.mean(drift):.4g}, peak {np.max(drift):.4g}")
    jitter = [record["args"]["value"] for record in records
              if record.get("type") == "event"
              and record.get("name") == "monitor.clock_jitter"]
    if jitter:
        lines.append(f"  clock jitter (monitor): {jitter[-1]:.2%}")
    return lines


def _solver_section(records) -> list[str]:
    solver_spans = list(_spans(records, cat="solver"))
    metrics = next((record["values"] for record in records
                    if record.get("type") == "metrics"), None)
    if not solver_spans and not metrics:
        return []
    lines = ["", "solver effort"]
    if solver_spans:
        nfev = sum(span.get("args", {}).get("nfev", 0)
                   for span in solver_spans)
        njev = sum(span.get("args", {}).get("njev", 0)
                   for span in solver_spans)
        wall = sum(span.get("args", {}).get("wall", 0.0)
                   for span in solver_spans)
        lines.append(f"  {len(solver_spans)} solver calls, "
                     f"{int(nfev)} RHS evaluations, "
                     f"{int(njev)} Jacobian evaluations, "
                     f"{wall:.3f} s wall")
    if metrics:
        counters = metrics.get("counters", {})
        interesting = {name: value for name, value in counters.items()
                       if not name.startswith("ssa.firings[")}
        for name in sorted(interesting):
            lines.append(f"  {name:32s} {interesting[name]:g}")
        firings = {name: value for name, value in counters.items()
                   if name.startswith("ssa.firings[")}
        if firings:
            top = sorted(firings.items(), key=lambda kv: -kv[1])[:5]
            lines.append("  busiest SSA channels:")
            for name, value in top:
                lines.append(f"    {name[12:-1]:30s} {value:g}")
    return lines


def _diagnostics_section(records) -> list[str]:
    diags = [record for record in records if record.get("type") == "diag"]
    lines = ["", "diagnostics"]
    if not diags:
        lines.append("  none")
        return lines
    for record in diags:
        cycle = record.get("cycle")
        where = f" (cycle {cycle})" if cycle is not None else ""
        lines.append(f"  {record.get('code', '?')} "
                     f"{record.get('severity', '?')}: "
                     f"{record.get('message', '')}{where}")
    return lines
