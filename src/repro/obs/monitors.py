"""Protocol health monitors: runtime REPRO-R*** diagnostics.

The lint engine (PR 1) checks protocol *structure* before any simulation;
these monitors check protocol *execution* while trajectories stream.
Each monitor computes a scalar health metric per cycle (or per run) and
surfaces a :class:`RuntimeDiagnostic` in the ``REPRO-R***`` namespace
when a configurable threshold is exceeded -- the runtime mirror of the
``REPRO-E/W`` static codes in ``docs/lint.md``.

Catalogue (see ``docs/observability.md``):

========== ===============================================================
REPRO-R101 phase overlap: outgoing transfer flux active in more than
           one colour category at once, flux-weighted time average; the
           signature of a rate-dependent (unphased) transfer chain.  A
           phased system may *hold* quantity in several colours, but it
           only *drains* one colour per phase window
REPRO-R102 clock period jitter above threshold
REPRO-R103 absence-indicator crispness: low contrast between an
           indicator's absent-phase high and present-phase floor
REPRO-R104 residual signal still in the drained colour (the one whose
           emptiness defines the boundary) at a cycle boundary
REPRO-R105 per-cycle conservation drift of the clock mass
========== ===============================================================
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.crn.simulation.result import Trajectory
from repro.obs.records import CycleSpan

#: Rotation order of the three colour categories.
ROTATION = ("red", "green", "blue")


@dataclass(frozen=True)
class RuntimeDiagnostic:
    """One runtime finding, mirroring the lint ``Diagnostic`` shape."""

    code: str
    severity: str
    message: str
    #: simulated time the finding is anchored to (cycle end, run end...).
    t: float = 0.0
    cycle: int | None = None
    value: float | None = None
    threshold: float | None = None
    subject: str = ""

    def format(self) -> str:
        where = f" (cycle {self.cycle})" if self.cycle is not None else ""
        text = f"{self.code} {self.severity}: {self.message}{where}"
        if self.value is not None and self.threshold is not None:
            text += f"  [value {self.value:.4g}, threshold " \
                    f"{self.threshold:.4g}]"
        return text

    def to_dict(self) -> dict:
        payload = {"type": "diag", "code": self.code,
                   "severity": self.severity, "message": self.message,
                   "t": self.t}
        if self.cycle is not None:
            payload["cycle"] = self.cycle
        if self.value is not None:
            payload["value"] = self.value
        if self.threshold is not None:
            payload["threshold"] = self.threshold
        if self.subject:
            payload["subject"] = self.subject
        return payload


@dataclass(frozen=True)
class MonitorConfig:
    """Warn thresholds for the runtime monitors.

    Every threshold compares against a dimensionless health metric, so
    one default set works across rate schemes and design sizes.
    """

    #: REPRO-R101: flux-weighted fraction of drain activity outside the
    #: dominant draining colour.  Phase-ordered transfers empty one
    #: colour per phase window, so concurrent drains mean the phases are
    #: not actually ordered.  Empirically the phased machine scores
    #: ~0.00 and the naive rate-dependent chain 0.26-0.35.
    phase_overlap_warn: float = 0.2
    #: REPRO-R102: relative standard deviation of the cycle period.
    clock_jitter_warn: float = 0.10
    #: REPRO-R103: minimum high/floor contrast of an absence indicator.
    indicator_contrast_warn: float = 5.0
    #: REPRO-R104: fraction of signal mass still in the drained colour
    #: at a cycle boundary.
    boundary_residual_warn: float = 0.05
    #: REPRO-R105: relative drift of the conserved clock mass per cycle.
    conservation_drift_warn: float = 0.02
    #: Signal mass below this total is ignored (empty-machine cycles).
    min_signal_mass: float = 1e-6
    #: Cycles needed before the jitter monitor can judge.
    min_cycles_for_jitter: int = 3


def load_monitor_config(path) -> MonitorConfig:
    """Load threshold overrides from a ``--monitor-config`` JSON file.

    The file holds a flat object whose keys are
    :class:`MonitorConfig` field names (any subset)::

        {"clock_jitter_warn": 0.05, "boundary_residual_warn": 0.02}

    Unknown keys raise, so a typo cannot silently leave a threshold at
    its default.  One file tunes every consumer -- fault campaigns,
    the waves scenarios, and the filter CLI all accept the flag.
    """
    import json
    from dataclasses import fields
    from pathlib import Path

    from repro.errors import ReproError

    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(f"cannot read monitor config {path}: "
                         f"{exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not valid JSON ({exc.msg})") from exc
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: monitor config must be a JSON object")
    known = {f.name: f.type for f in fields(MonitorConfig)}
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ReproError(
            f"{path}: unknown monitor threshold(s) {unknown}; expected "
            f"a subset of {sorted(known)}")
    values = {}
    for key, value in payload.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ReproError(f"{path}: threshold {key!r} must be a "
                             f"number; got {value!r}")
        values[key] = (int(value) if key == "min_cycles_for_jitter"
                       else float(value))
    return MonitorConfig(**values)


# -- pure trajectory statistics ----------------------------------------------


def group_mass_series(trajectory: Trajectory,
                      groups: Mapping[str, Sequence[str]]) -> dict:
    """Summed time series per named species group."""
    return {name: trajectory.total(members)
            for name, members in groups.items()}


def drain_series(trajectory: Trajectory,
                 groups: Mapping[str, Sequence[str]]
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Per-group positive drain rates over the sample intervals.

    Returns ``(drains, dt)`` where ``drains[g, i]`` is
    ``max(0, -dm_g/dt)`` on interval ``i``.  Only *outgoing* flux
    counts: a group that is filling is not draining.
    """
    masses = np.stack([trajectory.total(members)
                       for members in groups.values()])
    dt = np.diff(trajectory.times)
    rates = np.zeros((masses.shape[0], dt.size))
    valid = dt > 0
    rates[:, valid] = -np.diff(masses, axis=1)[:, valid] / dt[valid]
    return np.maximum(rates, 0.0), dt


def time_average(trajectory: Trajectory, series: np.ndarray) -> float:
    """Trapezoidal time average of a per-sample series."""
    times = trajectory.times
    if times.size < 2:
        return float(series[0]) if series.size else 0.0
    width = times[-1] - times[0]
    if width <= 0:
        return float(series[-1])
    return float(np.trapezoid(series, times) / width)


def phase_overlap(trajectory: Trajectory,
                  groups: Mapping[str, Sequence[str]],
                  min_total: float = 1e-9) -> tuple[float, float]:
    """(flux-weighted mean, peak) phase-overlap fraction.

    ``overlap(t) = 1 - max_g d_g(t) / sum_g d_g(t)`` where ``d_g`` is
    the group's drain rate: the share of outgoing transfer flux that
    happens outside the dominant draining colour.  A phase-ordered
    system drains one colour per phase window, so its overlap stays
    near zero even while several colours *hold* mass (registers,
    pending contributions); an unphased chain drains every stage
    concurrently and scores high.  The mean weights each interval by
    its total flux, so idle stretches do not dilute the metric.
    Intervals with total drain below ``min_total`` (or a small fraction
    of the peak flux -- derivative noise) are ignored.
    """
    drains, dt = drain_series(trajectory, groups)
    if drains.size == 0:
        return 0.0, 0.0
    total = drains.sum(axis=0)
    dominant = drains.max(axis=0)
    floor = max(min_total, 1e-3 * float(total.max(initial=0.0)))
    active = total > floor
    if not active.any():
        return 0.0, 0.0
    series = 1.0 - dominant[active] / total[active]
    weight = total[active] * dt[active]
    mean = float(np.sum(series * weight) / np.sum(weight))
    return mean, float(series.max())


def indicator_contrast(trajectory: Trajectory, name: str,
                       floor: float = 1e-9) -> float:
    """High/low contrast of an absence indicator over a window.

    A crisp indicator is pinned near zero while its colour is present
    and shoots up when the colour empties, so the ratio between its 95th
    and 5th percentile levels is large.  A mushy indicator (insufficient
    rate separation) hovers, and the ratio collapses toward 1.
    """
    series = trajectory.column(name)
    high = float(np.percentile(series, 95))
    low = float(np.percentile(series, 5))
    return high / max(low, floor)


def stage_color_groups(stages: Sequence[str]) -> dict[str, list[str]]:
    """Colour a linear transfer chain cyclically, stage ``i`` -> colour
    ``i mod 3`` -- exactly how the phase-ordered version of the same
    chain is coloured, making overlap comparisons apples-to-apples."""
    groups: dict[str, list[str]] = {color: [] for color in ROTATION}
    for i, stage in enumerate(stages):
        groups[ROTATION[i % 3]].append(stage)
    return groups


def check_phase_overlap(trajectory: Trajectory,
                        groups: Mapping[str, Sequence[str]],
                        config: MonitorConfig | None = None,
                        subject: str = "") -> list[RuntimeDiagnostic]:
    """Standalone REPRO-R101 check over a whole trajectory.

    Used to audit drivers that do not go through the machine monitor --
    notably the naive rate-dependent baseline, whose Erlang smearing
    keeps mass spread over several stages at once.
    """
    config = config or MonitorConfig()
    mean, peak = phase_overlap(trajectory, groups,
                               min_total=config.min_signal_mass)
    if mean <= config.phase_overlap_warn:
        return []
    return [RuntimeDiagnostic(
        code="REPRO-R101", severity="warning",
        message=f"phase-overlap fraction {mean:.3f} (peak {peak:.3f}): "
                f"multiple colour categories drain concurrently instead "
                f"of one phase at a time",
        t=trajectory.t_final, value=mean,
        threshold=config.phase_overlap_warn, subject=subject)]


# -- streaming monitor --------------------------------------------------------


@dataclass(frozen=True)
class ProtocolView:
    """What the monitor needs to know about a running protocol."""

    #: signal species names per colour.
    color_groups: Mapping[str, Sequence[str]]
    #: absence-indicator species name per colour.
    indicator_names: Mapping[str, str] = field(default_factory=dict)
    #: the colour whose emptiness defines a cycle boundary (phase 3
    #: complete); residual mass here at a boundary is REPRO-R104.
    drained_color: str = "blue"
    #: nominal conserved clock mass (None disables REPRO-R105).
    clock_mass: float | None = None


class ProtocolMonitor:
    """Streaming per-cycle health checks for a machine run.

    The machine driver calls :meth:`observe_cycle` once per completed
    cycle with the cycle's :class:`CycleSpan`, its trajectory segment
    and the conserved clock total measured at the boundary; the monitor
    thresholds the health metrics, collects diagnostics, and mirrors
    each metric into the tracer (``monitor`` category events) so
    ``repro report`` can summarise them from the trace alone.
    """

    def __init__(self, view: ProtocolView,
                 config: MonitorConfig | None = None,
                 tracer=None, metrics=None):
        from repro.obs.metrics import ensure_metrics
        from repro.obs.tracer import ensure_tracer

        self.view = view
        self.config = config or MonitorConfig()
        self.tracer = ensure_tracer(tracer)
        self.metrics = ensure_metrics(metrics)
        self.diagnostics: list[RuntimeDiagnostic] = []
        self._spans: list[CycleSpan] = []
        self._finished = False

    # -- per-cycle ------------------------------------------------------------

    def observe_cycle(self, span: CycleSpan, segment: Trajectory,
                      clock_total: float | None = None) -> None:
        config = self.config
        self._spans.append(span)
        self._check_overlap(span, segment)
        self._check_indicators(span, segment)
        self._check_boundary_residual(span, segment)
        if clock_total is not None and self.view.clock_mass:
            drift = abs(clock_total - self.view.clock_mass) \
                / self.view.clock_mass
            self.metrics.observe("monitor.conservation_drift", drift)
            self._emit_metric("conservation_drift", span, drift)
            if drift > config.conservation_drift_warn:
                self._add(RuntimeDiagnostic(
                    code="REPRO-R105", severity="warning",
                    message=f"conserved clock mass drifted "
                            f"{drift:.2%} from nominal "
                            f"{self.view.clock_mass:g} before boundary "
                            f"replenishment",
                    t=span.t1, cycle=span.index, value=drift,
                    threshold=config.conservation_drift_warn))

    def _check_overlap(self, span: CycleSpan, segment: Trajectory) -> None:
        config = self.config
        mean, peak = phase_overlap(segment, self.view.color_groups,
                                   min_total=config.min_signal_mass)
        self.metrics.observe("monitor.phase_overlap", mean)
        self._emit_metric("phase_overlap", span, mean,
                          extra={"peak": peak})
        if mean > config.phase_overlap_warn:
            self._add(RuntimeDiagnostic(
                code="REPRO-R101", severity="warning",
                message=f"phase-overlap mass fraction {mean:.3f} "
                        f"(peak {peak:.3f}) during the cycle: transfers "
                        f"are not completing within their phase windows",
                t=span.t1, cycle=span.index, value=mean,
                threshold=config.phase_overlap_warn))

    def _check_indicators(self, span: CycleSpan,
                          segment: Trajectory) -> None:
        config = self.config
        for color, name in self.view.indicator_names.items():
            if name not in segment:
                continue
            contrast = indicator_contrast(segment, name)
            self.metrics.observe(f"monitor.indicator_contrast[{color}]",
                                 contrast)
            self._emit_metric("indicator_contrast", span, contrast,
                              extra={"color": color})
            if contrast < config.indicator_contrast_warn:
                self._add(RuntimeDiagnostic(
                    code="REPRO-R103", severity="warning",
                    message=f"absence indicator {name!r} ({color}) has "
                            f"contrast {contrast:.2f} between absent and "
                            f"present phases; absence detection is mushy "
                            f"(check rate separation)",
                    t=span.t1, cycle=span.index, value=contrast,
                    threshold=config.indicator_contrast_warn,
                    subject=name))

    def _check_boundary_residual(self, span: CycleSpan,
                                 segment: Trajectory) -> None:
        config = self.config
        final = segment.states[-1]
        index = {name: i for i, name in enumerate(segment.names)}
        total = 0.0
        leftover = 0.0
        for color, members in self.view.color_groups.items():
            mass = sum(float(final[index[m]]) for m in members
                       if m in index)
            total += mass
            if color == self.view.drained_color:
                leftover += mass
        if total < config.min_signal_mass:
            return
        residual = leftover / total
        self.metrics.observe("monitor.boundary_residual", residual)
        self._emit_metric("boundary_residual", span, residual)
        if residual > config.boundary_residual_warn:
            self._add(RuntimeDiagnostic(
                code="REPRO-R104", severity="warning",
                message=f"{residual:.2%} of the signal mass is still in "
                        f"the drained colour "
                        f"({self.view.drained_color}) at the cycle "
                        f"boundary: phase 3 did not complete",
                t=span.t1, cycle=span.index, value=residual,
                threshold=config.boundary_residual_warn))

    # -- end of run -----------------------------------------------------------

    def finish(self) -> list[RuntimeDiagnostic]:
        """Run-level checks (clock jitter); idempotent."""
        if self._finished:
            return self.diagnostics
        self._finished = True
        config = self.config
        if len(self._spans) >= config.min_cycles_for_jitter:
            periods = np.array([span.duration for span in self._spans])
            jitter = float(np.std(periods) / np.mean(periods))
            self.metrics.set_gauge("monitor.clock_jitter", jitter)
            self.tracer.emit_event(
                "monitor.clock_jitter", "monitor", self._spans[-1].t1,
                {"value": jitter, "cycles": len(self._spans)})
            if jitter > config.clock_jitter_warn:
                self._add(RuntimeDiagnostic(
                    code="REPRO-R102", severity="warning",
                    message=f"clock period jitter {jitter:.2%} over "
                            f"{len(self._spans)} cycles exceeds "
                            f"{config.clock_jitter_warn:.0%}",
                    t=self._spans[-1].t1, value=jitter,
                    threshold=config.clock_jitter_warn))
        return self.diagnostics

    # -- internals ------------------------------------------------------------

    def _add(self, diagnostic: RuntimeDiagnostic) -> None:
        self.diagnostics.append(diagnostic)
        self.metrics.inc("monitor.diagnostics")
        self.tracer.emit_diagnostic(diagnostic)

    def _emit_metric(self, name: str, span: CycleSpan, value: float,
                     extra: dict | None = None) -> None:
        if not self.tracer.enabled:
            return
        args = {"cycle": span.index, "value": value}
        if extra:
            args.update(extra)
        self.tracer.emit_event(f"monitor.{name}", "monitor", span.t1,
                               args)


def clock_diagnostics(clock, trajectory: Trajectory,
                      config: MonitorConfig | None = None,
                      indicator_names: Mapping[str, str] | None = None
                      ) -> list[RuntimeDiagnostic]:
    """Run-level R102/R103 checks for a free-running clock trajectory."""
    config = config or MonitorConfig()
    findings: list[RuntimeDiagnostic] = []
    edges = clock.rising_edges(trajectory)
    if edges.size >= config.min_cycles_for_jitter + 1:
        periods = np.diff(edges)
        jitter = float(np.std(periods) / np.mean(periods))
        if jitter > config.clock_jitter_warn:
            findings.append(RuntimeDiagnostic(
                code="REPRO-R102", severity="warning",
                message=f"clock period jitter {jitter:.2%} over "
                        f"{periods.size} rotations exceeds "
                        f"{config.clock_jitter_warn:.0%}",
                t=trajectory.t_final, value=jitter,
                threshold=config.clock_jitter_warn))
    for color, name in (indicator_names or {}).items():
        if name not in trajectory:
            continue
        contrast = indicator_contrast(trajectory, name)
        if contrast < config.indicator_contrast_warn:
            findings.append(RuntimeDiagnostic(
                code="REPRO-R103", severity="warning",
                message=f"absence indicator {name!r} ({color}) has "
                        f"contrast {contrast:.2f}; absence detection is "
                        f"mushy (check rate separation)",
                t=trajectory.t_final, value=contrast,
                threshold=config.indicator_contrast_warn, subject=name))
    return findings
