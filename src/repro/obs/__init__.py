"""Runtime telemetry: tracing, metrics, and protocol health monitors.

The observability layer is the runtime counterpart of :mod:`repro.lint`:
where lint checks protocol *structure* before simulation, this package
watches protocol *execution* -- cycle/phase/transfer spans, solver
effort, and streaming health monitors that surface ``REPRO-R***``
diagnostics.  Everything is optional and zero-overhead when disabled:
instrumented code defaults to :data:`NULL_TRACER` / :data:`NULL_METRICS`
singletons whose methods are no-ops.

Entry points
------------
- ``Tracer(JsonlSink(path))`` + ``machine = SynchronousMachine(design,
  tracer=tracer)`` records a structured trace.
- ``MetricsRegistry()`` passed as ``metrics=`` captures solver and
  protocol counters/histograms.
- ``python -m repro <cmd> --trace FILE --metrics FILE`` wires both from
  the command line; ``python -m repro report FILE`` summarises a trace.

See ``docs/observability.md`` for the span, metric, and diagnostic
catalogue.
"""

from repro.obs.classify import classify_failure
from repro.obs.metrics import (NULL_METRICS, Counter, Gauge, Histogram,
                               MetricsRegistry, NullMetrics,
                               ensure_metrics)
from repro.obs.monitors import (MonitorConfig, ProtocolMonitor,
                                ProtocolView, RuntimeDiagnostic,
                                check_phase_overlap, clock_diagnostics,
                                indicator_contrast, load_monitor_config,
                                phase_overlap, stage_color_groups)
from repro.obs.records import (CycleSpan, EventRecord, MetricsRecord,
                               SpanRecord)
from repro.obs.sinks import (ChromeTraceSink, JsonlSink, MemorySink,
                             TraceWriteError, chrome_events)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, ensure_tracer

__all__ = [
    "ChromeTraceSink",
    "Counter",
    "CycleSpan",
    "EventRecord",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRecord",
    "MetricsRegistry",
    "MonitorConfig",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "ProtocolMonitor",
    "ProtocolView",
    "RuntimeDiagnostic",
    "SpanRecord",
    "TraceWriteError",
    "Tracer",
    "check_phase_overlap",
    "chrome_events",
    "classify_failure",
    "clock_diagnostics",
    "ensure_metrics",
    "ensure_tracer",
    "indicator_contrast",
    "load_monitor_config",
    "phase_overlap",
    "stage_color_groups",
]
