"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetworkError(ReproError):
    """Raised for ill-formed chemical reaction networks."""


class ParseError(ReproError):
    """Raised when CRN text cannot be parsed."""

    def __init__(self, message: str, line_no: int | None = None,
                 line: str | None = None):
        self.line_no = line_no
        self.line = line
        if line_no is not None:
            message = f"line {line_no}: {message}"
            if line is not None:
                message = f"{message}\n    {line.strip()}"
        super().__init__(message)


class SimulationError(ReproError):
    """Raised when a simulation fails to complete."""


class SynthesisError(ReproError):
    """Raised when a signal-flow graph cannot be synthesized to reactions."""


class FaultError(ReproError):
    """Raised when a fault-injection plan is ill-formed or violates the
    fault-model contract (e.g. a model adds or removes species)."""


class ScenarioError(ReproError):
    """Raised for unknown scenario names or unsupported scenario
    capabilities (see :mod:`repro.scenarios`)."""


class ServeError(ReproError):
    """Raised for malformed job specs or serving-layer failures
    (see :mod:`repro.serve`)."""


class SchedulingError(SynthesisError):
    """Raised when phase/colour assignment of a design fails."""


class CertifyError(SynthesisError):
    """Raised when a module is uncertifiable (REPRO-C801) or a
    composition violates the small-gain condition (REPRO-C802)."""
