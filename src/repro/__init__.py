"""repro -- Synchronous sequential computation with molecular reactions.

A from-scratch Python reproduction of Jiang, Riedel & Parhi,
"Synchronous Sequential Computation with Molecular Reactions" (DAC 2011),
together with every substrate the paper depends on: a chemical reaction
network kernel with deterministic and stochastic simulators, the three-phase
(red/green/blue) transfer protocol with absence indicators, a molecular
clock, delay-element memory, a synthesis flow from signal-flow graphs to
reactions, digital (dual-rail) sequential logic, the asynchronous
(self-timed) companion scheme, and a DNA strand-displacement compilation of
arbitrary networks as the experimental-chassis substitute.
"""

__version__ = "1.0.0"

from repro.crn import (Network, OdeSimulator, RateScheme, Reaction,
                       SimulationOptions, SimulationResult, Species,
                       StochasticSimulator, Trajectory, parse_network,
                       simulate)

__all__ = [
    "Network",
    "OdeSimulator",
    "RateScheme",
    "Reaction",
    "SimulationOptions",
    "SimulationResult",
    "Species",
    "StochasticSimulator",
    "Trajectory",
    "__version__",
    "parse_network",
    "simulate",
]
