"""The logic-analyzer probe: capture digital signals from live runs.

A :class:`WaveformProbe` is handed to a driver (machine, counter, FSM)
the same way a tracer is: the driver holds it unconditionally and
guards every sampling block with ``if probe.enabled:``.  The
:class:`NullWaveformProbe` singleton makes the disabled path a single
attribute read with **zero allocations** (tracemalloc-pinned, matching
the PR 2 tracer standard).

The probe owns three things:

- a :class:`~repro.waves.waveform.Waveform` accumulating change-lists,
- an optional :class:`~repro.waves.assertions.AssertionEngine` fed
  online as changes and cycle boundaries stream in,
- the per-cycle ``(span, phases, transfers, boundary_wait)`` structure
  the cycle profiler (:mod:`repro.waves.profiler`) consumes;
  ``boundary_wait`` is the recoverable dead time between digital
  settling and the actual cycle boundary.

Drivers call :meth:`record` for within-cycle samples, :meth:`boundary`
once per cycle boundary with the full boundary value dict (also the
assertion-expression namespace), and :meth:`observe_cycle` with the
phase/transfer decomposition the tracer already computes.
"""

from __future__ import annotations

from repro.obs.monitors import RuntimeDiagnostic
from repro.waves.assertions import AssertionEngine
from repro.waves.waveform import Waveform

#: Signal carrying the dominant clock colour / active phase id.
PHASE_SIGNAL = "phase"


def signal_key(name: str) -> str:
    """An identifier-safe key for the assertion-expression namespace.

    Waveform signal names may carry punctuation (``ctr_b0`` is fine,
    ``transfer:red->green`` is not); boundary-sample dicts use this
    mapping so every signal is addressable from an assertion condition.
    """
    key = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not key or key[0].isdigit():
        key = "_" + key
    return key


class WaveformProbe:
    """Collects digital-domain waveforms and streams assertions.

    Parameters
    ----------
    assertions:
        optional :class:`~repro.waves.assertions.AssertionEngine`
        evaluated online; violations come back from :meth:`finish`.
    samples_per_cycle:
        cap on adaptive within-cycle samples a driver should take
        (drivers read this; the probe itself stores only changes).
    """

    __slots__ = ("enabled", "waveform", "engine", "samples_per_cycle",
                 "cycle_records", "_finished")

    def __init__(self, assertions: AssertionEngine | None = None,
                 samples_per_cycle: int = 32):
        self.enabled = True
        self.waveform = Waveform()
        self.engine = assertions
        self.samples_per_cycle = int(samples_per_cycle)
        #: per-cycle (CycleSpan, phases, transfers, boundary_wait) for
        #: the profiler; phases are (color, t0, t1), transfers
        #: (name, t0, t1, args), boundary_wait the recoverable dead time.
        self.cycle_records: list[tuple] = []
        self._finished = False

    # -- capture --------------------------------------------------------------

    def declare(self, name: str, kind: str, width: int = 1) -> None:
        self.waveform.declare(name, kind, width)

    def record(self, name: str, t: float, value,
               kind: str | None = None, width: int = 1) -> None:
        """Record one sample; assertion stream sees actual changes only."""
        changed = self.waveform.record(name, t, value, kind=kind,
                                       width=width)
        if changed and self.engine is not None:
            self.engine.on_change(float(t), name, value)

    def boundary(self, cycle: int, t: float, values: dict) -> None:
        """One cycle boundary: the assertion-expression namespace."""
        if self.engine is not None:
            self.engine.on_boundary(int(cycle), float(t), values)

    def observe_cycle(self, span, phases, transfers,
                      boundary_wait: float = 0.0) -> None:
        """Store one cycle's phase/transfer decomposition and chart the
        phase channel."""
        self.cycle_records.append((span, list(phases), list(transfers),
                                   float(boundary_wait)))
        for color, t0, _t1 in phases:
            self.record(PHASE_SIGNAL, t0, color, kind="state")

    # -- lifecycle ------------------------------------------------------------

    def finish(self, t: float | None = None) -> list[RuntimeDiagnostic]:
        """Flush end-of-stream assertion obligations; idempotent."""
        self._finished = True
        if self.engine is None:
            return []
        return self.engine.finish(t)

    def diagnostics(self) -> list[RuntimeDiagnostic]:
        """All assertion violations collected so far."""
        if self.engine is None:
            return []
        if not self._finished:
            return self.engine.finish()
        return self.engine.violations


class NullWaveformProbe:
    """Disabled probe: every method is a no-op, nothing is allocated."""

    __slots__ = ()
    enabled = False
    waveform = None
    engine = None
    samples_per_cycle = 0
    cycle_records = ()

    def declare(self, name, kind, width=1) -> None:
        pass

    def record(self, name, t, value, kind=None, width=1) -> None:
        pass

    def boundary(self, cycle, t, values) -> None:
        pass

    def observe_cycle(self, span, phases, transfers,
                      boundary_wait=0.0) -> None:
        pass

    def finish(self, t=None) -> list:
        return []

    def diagnostics(self) -> list:
        return []


#: Process-wide disabled probe; instrumented code defaults to this.
NULL_PROBE = NullWaveformProbe()


def ensure_probe(probe) -> WaveformProbe | NullWaveformProbe:
    """Normalize an optional probe argument to a usable instance."""
    return probe if probe is not None else NULL_PROBE
