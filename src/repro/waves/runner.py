"""Canned logic-analyzer scenarios for the ``repro waves`` subcommand.

A scenario is one probed run of a built-in circuit -- the binary
counter, an FSM, or a synthesized filter machine -- returning the
waveform, any assertion violations and the cycle profile in one
result object the CLI renders and exports.

Multi-trial mode re-runs a scenario over ``SeedSequence.spawn``-derived
seeds through :class:`~repro.crn.simulation.sweep.ParallelSweepRunner`.
Each trial is pre-seeded and self-contained, so the report (and the
exported VCD of the ``keep_trial`` index) is byte-identical whatever
the worker count -- the property the CI golden-file diff pins.
Assertions travel as *spec dicts* (compiled per trial): compiled
expression code objects do not pickle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.obs.monitors import MonitorConfig
from repro.scenarios import get_scenario, scenario_names
from repro.waves.assertions import build_engine
from repro.waves.probe import WaveformProbe
from repro.waves.profiler import CycleProfileReport, profile_cycles
from repro.waves.vcd import render_vcd
from repro.waves.waveform import Waveform

#: What ``--scenario`` accepts: every registered scenario with a probed
#: runner (see :mod:`repro.scenarios.builtin`), in registration order.
SCENARIOS = scenario_names(tag="waves")


@dataclass
class ScenarioResult:
    """One probed scenario run."""

    scenario: str
    seed: int
    waveform: Waveform
    violations: list
    profile: CycleProfileReport
    summary: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def _make_probe(assert_specs, samples_per_cycle: int) -> WaveformProbe:
    engine = build_engine(assert_specs) if assert_specs else None
    return WaveformProbe(assertions=engine,
                         samples_per_cycle=samples_per_cycle)


def run_scenario(scenario: str, seed: int = 0,
                 assert_specs: list | None = None,
                 monitor: MonitorConfig | None = None,
                 bits: int = 2, pulses: int | None = None,
                 machine: str = "parity", pattern: str = "101",
                 word: str = "110101", taps: int = 2,
                 input_samples=None,
                 samples_per_cycle: int = 32) -> ScenarioResult:
    """Run one scenario with a live probe and return its result."""
    if scenario not in SCENARIOS:
        raise ReproError(f"unknown waves scenario {scenario!r}; expected "
                         f"one of {SCENARIOS}")
    probe = _make_probe(assert_specs, samples_per_cycle)
    summary = get_scenario(scenario).run_probed(
        probe, seed=seed, monitor=monitor, bits=bits, pulses=pulses,
        machine=machine, pattern=pattern, word=word, taps=taps,
        input_samples=input_samples)
    violations = probe.finish()
    profile = profile_cycles(probe.cycle_records)
    if profile.n_cycles:
        summary["profile"] = profile.to_dict()
    return ScenarioResult(scenario=scenario, seed=seed,
                          waveform=probe.waveform,
                          violations=violations, profile=profile,
                          summary=summary)


# -- multi-trial fan-out ------------------------------------------------------


def _trial_payloads(trials: int, seed: int, kwargs: dict,
                    keep_trial: int) -> list[dict]:
    children = np.random.SeedSequence(seed).spawn(trials)
    return [dict(kwargs, seed=int(child.generate_state(1)[0]),
                 _trial=index, _keep=(index == keep_trial))
            for index, child in enumerate(children)]


def _run_scenario_trial(payload: dict) -> dict:
    """Top-level (picklable) worker: one pre-seeded trial."""
    payload = dict(payload)
    index = payload.pop("_trial")
    keep = payload.pop("_keep")
    result = run_scenario(**payload)
    out = {"trial": index, "seed": result.seed, "ok": result.ok,
           "violations": [v.to_dict() for v in result.violations],
           "summary": result.summary}
    if keep:
        out["vcd"] = render_vcd(result.waveform)
        out["n_signals"] = result.waveform.n_signals
        out["n_changes"] = result.waveform.n_changes
    return out


def run_trials(scenario: str, trials: int = 1, seed: int = 0,
               n_workers: int | None = None, keep_trial: int = 0,
               **kwargs) -> dict:
    """Fan a scenario over ``trials`` pre-seeded runs.

    Returns a deterministic report dict; the ``kept`` entry carries the
    rendered VCD of trial ``keep_trial`` (byte-identical across worker
    counts because every trial is a pure function of its spawned seed).
    """
    from repro.crn.simulation.sweep import ParallelSweepRunner

    if trials < 1:
        raise ReproError("waves needs at least one trial")
    if not 0 <= keep_trial < trials:
        raise ReproError(f"keep trial {keep_trial} out of range for "
                         f"{trials} trial(s)")
    payloads = _trial_payloads(trials, seed, dict(scenario=scenario,
                                                  **kwargs), keep_trial)
    results = ParallelSweepRunner(n_workers).map(_run_scenario_trial,
                                                 payloads)
    kept = next(r for r in results if "vcd" in r)
    rows = [{key: value for key, value in row.items() if key != "vcd"}
            for row in results]
    return {
        "scenario": scenario,
        "root_seed": seed,
        "trials": trials,
        "violations_total": sum(len(r["violations"]) for r in results),
        "failed_trials": [r["trial"] for r in results if not r["ok"]],
        "results": rows,
        "kept": {"trial": kept["trial"], "vcd": kept["vcd"],
                 "n_signals": kept["n_signals"],
                 "n_changes": kept["n_changes"]},
    }
