"""Render assertion violations through the shared lint renderers.

Temporal-assertion violations are
:class:`~repro.obs.monitors.RuntimeDiagnostic` records (so they stream
through the tracer and ``repro report``), but for human and CI
consumption they reuse the PR 1 lint presentation layer: converting
each into a static :class:`~repro.lint.engine.Diagnostic` lets the
existing ``render_text`` / ``render_json`` / ``render_sarif``
functions emit REPRO-A9xx findings in the exact shapes the lint and
certify CLIs already produce (SARIF results may reference rule ids not
listed under ``rules`` -- valid per the 2.1.0 schema).
"""

from __future__ import annotations

from repro.lint.engine import Diagnostic, LintReport, Severity
from repro.lint.output import render_json, render_sarif, render_text

#: The pseudo-rule name assertion findings carry in lint renderings.
RULE_NAME = "temporal-assertions"

#: Documentation home of the REPRO-A9xx catalogue.
WAVES_DOCS_URL = "docs/waves.md"


def violation_to_diagnostic(violation) -> Diagnostic:
    """Map one RuntimeDiagnostic onto the static lint Diagnostic shape."""
    message = violation.message
    where = []
    if violation.cycle is not None:
        where.append(f"cycle {violation.cycle}")
    where.append(f"t={violation.t:g}")
    message += f" [{', '.join(where)}]"
    return Diagnostic(
        code=violation.code,
        rule=RULE_NAME,
        severity=Severity.from_name(violation.severity),
        message=message,
        subject=violation.subject,
    )


def violations_report(violations, target: str) -> list[tuple]:
    """The ``[(target, LintReport)]`` aggregate the renderers take."""
    report = LintReport(
        diagnostics=[violation_to_diagnostic(v) for v in violations],
        checked=[RULE_NAME],
        target=target,
    )
    return [(target, report)]


def render_violations(violations, target: str,
                      fmt: str = "text") -> str:
    """Render violations as ``text``, ``json`` or ``sarif``."""
    results = violations_report(violations, target)
    if fmt == "json":
        return render_json(results)
    if fmt == "sarif":
        return render_sarif(results)
    return render_text(results, verbose=True)
