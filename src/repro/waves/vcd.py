"""Deterministic VCD (value change dump) export, GTKWave-loadable.

The exporter is a pure function of the :class:`~repro.waves.waveform.
Waveform`: no dates, no hostnames, no wall-clock anywhere -- the same
probe data produces the same bytes on every run, which is what lets CI
diff a freshly recorded dump against a committed golden file.

Mapping
-------
- One simulated time unit is :data:`TICKS_PER_UNIT` VCD ticks at a
  ``1 us`` timescale, so sub-cycle structure stays visible at integer
  resolution.
- ``bit`` signals become 1-bit wires (``0``/``1``/``x``), ``int``
  signals ``width``-bit vectors (``b101 <id>``), ``real`` signals VCD
  reals (``r0.5 <id>``), ``state`` signals string changes
  (``sred <id>`` -- a GTKWave-supported extension for symbolic lanes).
- Identifier codes are assigned in declaration order from the printable
  ASCII range VCD mandates.
"""

from __future__ import annotations

from pathlib import Path

from repro.waves.waveform import Waveform, WaveError

#: VCD ticks per simulated time unit (timescale 1 us => 1 unit = 1 s).
TICKS_PER_UNIT = 1_000_000

#: Printable identifier alphabet mandated by the VCD grammar.
_ID_FIRST, _ID_LAST = 33, 126  # '!' .. '~'
_ID_BASE = _ID_LAST - _ID_FIRST + 1


def identifier(index: int) -> str:
    """The ``index``-th VCD identifier code (base-94, '!' onwards)."""
    if index < 0:
        raise WaveError("identifier index must be >= 0")
    chars = []
    index += 1
    while index:
        index, digit = divmod(index - 1, _ID_BASE)
        chars.append(chr(_ID_FIRST + digit))
    return "".join(reversed(chars))


def _ticks(t: float) -> int:
    return round(t * TICKS_PER_UNIT)


def _format_value(track, value, code: str) -> str:
    if track.kind == "bit":
        return f"{value}{code}"
    if track.kind == "int":
        if value < 0:
            raise WaveError(f"signal {track.name!r}: VCD int vectors "
                            f"are unsigned; got {value}")
        return f"b{value:b} {code}"
    if track.kind == "real":
        return f"r{value!r} {code}"
    # state: one token, whitespace would break the VCD grammar.
    text = "".join("_" if c.isspace() else c for c in str(value))
    return f"s{text or '?'} {code}"


def _initial_value(track, code: str) -> str:
    """The ``$dumpvars`` entry for a track with no change at tick 0."""
    if track.kind == "bit":
        return f"x{code}"
    if track.kind == "int":
        return f"bx {code}"
    if track.kind == "real":
        return f"r0.0 {code}"
    return f"s? {code}"


def render_vcd(waveform: Waveform, module: str = "repro") -> str:
    """Render a waveform as a VCD document (returned as a string)."""
    lines = [
        "$comment repro logic-analyzer waveform (deterministic) $end",
        "$timescale 1 us $end",
        f"$scope module {module} $end",
    ]
    codes: dict[str, str] = {}
    for index, track in enumerate(waveform.signals.values()):
        code = identifier(index)
        codes[track.name] = code
        if track.kind == "bit":
            var = f"wire 1 {code} {track.name}"
        elif track.kind == "int":
            var = f"wire {track.width} {code} {track.name}"
        elif track.kind == "real":
            var = f"real 64 {code} {track.name}"
        else:
            var = f"string 1 {code} {track.name}"
        lines.append(f"$var {var} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # Group changes by tick; last write per (tick, signal) wins.
    by_tick: dict[int, dict[str, str]] = {}
    for change in waveform.changes():
        track = waveform[change.signal]
        tick = _ticks(change.t)
        by_tick.setdefault(tick, {})[change.signal] = _format_value(
            track, change.value, codes[change.signal])

    first = by_tick.get(0, {})
    lines.append("$dumpvars")
    for track in waveform.signals.values():
        lines.append(first.get(track.name)
                     or _initial_value(track, codes[track.name]))
    lines.append("$end")
    order = {name: i for i, name in enumerate(waveform.signals)}
    for tick in sorted(by_tick):
        if tick == 0:
            continue  # folded into $dumpvars above
        lines.append(f"#{tick}")
        group = by_tick[tick]
        for name in sorted(group, key=order.__getitem__):
            lines.append(group[name])
    final_tick = _ticks(waveform.t_final)
    if final_tick not in by_tick or final_tick == 0:
        lines.append(f"#{max(final_tick, 1)}")
    return "\n".join(lines) + "\n"


def write_vcd(waveform: Waveform, path, module: str = "repro") -> Path:
    """Write the VCD document to ``path``."""
    path = Path(path)
    try:
        path.write_text(render_vcd(waveform, module=module),
                        encoding="ascii")
    except OSError as exc:
        raise WaveError(f"cannot write VCD file {path}: "
                        f"{exc.strerror or exc}") from exc
    return path
