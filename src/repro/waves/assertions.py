"""SVA-lite temporal assertions evaluated online over a waveform stream.

The engine is the runtime counterpart of the static ISS certificates:
where ``repro certify`` bounds what a composition *can* do before any
simulation, a temporal assertion states what a run *must* do and turns
the first divergence into a hard ``REPRO-A9xx`` diagnostic -- at the
cycle it happens, not after the digital-domain scorer compares final
outputs.

Catalogue (see ``docs/waves.md``)
---------------------------------
========== ================================================================
REPRO-A901 ``invariant``: a boolean expression over the sampled signal
           values must hold at every cycle boundary
REPRO-A902 ``stable_during``: a signal must not change while the phase
           channel holds a given value (e.g. a register is frozen
           outside its transfer phase)
REPRO-A903 ``implies_next_cycle``: if the antecedent holds at boundary
           ``n``, the consequent must hold at boundary ``n + 1``
REPRO-A904 ``eventually_within``: once armed, a condition must become
           true within ``k`` cycle boundaries
REPRO-A905 ``sequence``: a bounded sequence of conditions must hold on
           consecutive boundaries once its first step matches
========== ================================================================

Conditions are Python expressions evaluated against the boundary sample
(signal name -> value) with no builtins beyond ``abs``/``min``/``max``/
``round`` -- the same dict the probe hands to
:meth:`AssertionEngine.on_boundary`.

Violations are :class:`~repro.obs.monitors.RuntimeDiagnostic` records
(severity ``error``), so they flow through the tracer, the trace
summariser, :func:`repro.obs.classify.classify_failure`, and the shared
lint-style renderers in :mod:`repro.waves.output`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError
from repro.obs.monitors import RuntimeDiagnostic

#: Code per assertion type (the REPRO-A9xx runtime namespace).
ASSERTION_CODES = {
    "invariant": "REPRO-A901",
    "stable_during": "REPRO-A902",
    "implies_next_cycle": "REPRO-A903",
    "eventually_within": "REPRO-A904",
    "sequence": "REPRO-A905",
}

#: Violations reported per assertion before it mutes itself (a broken
#: invariant would otherwise fire on every remaining boundary).
MAX_VIOLATIONS_PER_ASSERTION = 8

_EVAL_GLOBALS = {"__builtins__": {}, "abs": abs, "min": min, "max": max,
                 "round": round}


class AssertionSpecError(ReproError):
    """Raised for malformed assertion specs or expressions."""


def evaluate(expr: str, code, values: dict) -> bool:
    """Evaluate a compiled condition against one boundary sample."""
    try:
        return bool(eval(code, _EVAL_GLOBALS, dict(values)))  # noqa: S307
    except NameError as exc:
        raise AssertionSpecError(
            f"assertion condition {expr!r} references an unknown "
            f"signal ({exc}); sampled signals: "
            f"{sorted(values)}") from exc
    except Exception as exc:
        raise AssertionSpecError(
            f"assertion condition {expr!r} failed to evaluate: "
            f"{exc}") from exc


def _compile(expr: str):
    if not isinstance(expr, str) or not expr.strip():
        raise AssertionSpecError(f"condition must be a non-empty "
                                 f"string; got {expr!r}")
    try:
        return compile(expr, "<assertion>", "eval")
    except SyntaxError as exc:
        raise AssertionSpecError(
            f"condition {expr!r} is not a valid expression: "
            f"{exc.msg}") from exc


class TemporalAssertion:
    """Base class: collects violations, mutes after a cap."""

    kind = "base"

    def __init__(self, name: str):
        self.name = name
        self.violations: list[RuntimeDiagnostic] = []

    @property
    def code(self) -> str:
        return ASSERTION_CODES[self.kind]

    # -- stream hooks (override as needed) -----------------------------------

    def on_change(self, t: float, signal: str, value) -> None:
        pass

    def on_boundary(self, cycle: int, t: float, values: dict) -> None:
        pass

    def finish(self, t: float) -> None:
        pass

    # -- violation bookkeeping ------------------------------------------------

    def _violate(self, message: str, t: float,
                 cycle: int | None = None) -> None:
        if len(self.violations) >= MAX_VIOLATIONS_PER_ASSERTION:
            return
        self.violations.append(RuntimeDiagnostic(
            code=self.code, severity="error",
            message=f"assertion {self.name!r}: {message}",
            t=t, cycle=cycle, subject=self.name))


class Invariant(TemporalAssertion):
    """REPRO-A901: ``expr`` holds at every cycle boundary."""

    kind = "invariant"

    def __init__(self, expr: str, name: str | None = None):
        super().__init__(name or f"invariant({expr})")
        self.expr = expr
        self._code = _compile(expr)

    def on_boundary(self, cycle, t, values):
        if not evaluate(self.expr, self._code, values):
            self._violate(f"invariant {self.expr!r} is false", t, cycle)


class StableDuring(TemporalAssertion):
    """REPRO-A902: ``signal`` holds its value while the phase channel
    equals ``phase``."""

    kind = "stable_during"

    def __init__(self, signal: str, phase: str,
                 phase_signal: str = "phase", name: str | None = None):
        super().__init__(name or f"stable_during({signal}, {phase})")
        self.signal = signal
        self.phase = phase
        self.phase_signal = phase_signal
        self._in_phase = False
        self._seen_value = False

    def on_change(self, t, signal, value):
        if signal == self.phase_signal:
            self._in_phase = value == self.phase
            self._seen_value = False
            return
        if signal != self.signal or not self._in_phase:
            return
        if self._seen_value:
            self._violate(
                f"signal {self.signal!r} changed during phase "
                f"{self.phase!r} (new value {value!r})", t)
        # The first change after entering the phase establishes the
        # value the signal must then hold for the rest of the window.
        self._seen_value = True


class ImpliesNextCycle(TemporalAssertion):
    """REPRO-A903: antecedent at boundary ``n`` forces the consequent
    at boundary ``n + 1``."""

    kind = "implies_next_cycle"

    def __init__(self, antecedent: str, consequent: str,
                 name: str | None = None):
        super().__init__(
            name or f"implies_next_cycle({antecedent} -> {consequent})")
        self.antecedent = antecedent
        self.consequent = consequent
        self._ante = _compile(antecedent)
        self._cons = _compile(consequent)
        self._pending: int | None = None

    def on_boundary(self, cycle, t, values):
        if self._pending is not None \
                and not evaluate(self.consequent, self._cons, values):
            self._violate(
                f"{self.antecedent!r} held at cycle {self._pending} but "
                f"{self.consequent!r} is false one cycle later", t, cycle)
        self._pending = cycle \
            if evaluate(self.antecedent, self._ante, values) else None


class EventuallyWithin(TemporalAssertion):
    """REPRO-A904: once ``when`` holds, ``holds`` must become true
    within ``cycles`` boundaries."""

    kind = "eventually_within"

    def __init__(self, when: str, holds: str, cycles: int,
                 name: str | None = None):
        super().__init__(
            name or f"eventually_within({when} -> {holds}, {cycles})")
        if cycles < 1:
            raise AssertionSpecError("eventually_within needs cycles >= 1")
        self.when = when
        self.holds = holds
        self.cycles = int(cycles)
        self._when = _compile(when)
        self._holds = _compile(holds)
        self._armed_at: int | None = None
        self._deadline_missed = False

    def on_boundary(self, cycle, t, values):
        if self._armed_at is not None:
            if evaluate(self.holds, self._holds, values):
                self._armed_at = None
            elif cycle - self._armed_at >= self.cycles:
                self._violate(
                    f"{self.holds!r} did not hold within {self.cycles} "
                    f"cycles of {self.when!r} (armed at cycle "
                    f"{self._armed_at})", t, cycle)
                self._armed_at = None
                self._deadline_missed = True
        if self._armed_at is None and not self._deadline_missed \
                and evaluate(self.when, self._when, values) \
                and not evaluate(self.holds, self._holds, values):
            # Arm only when the obligation is not already discharged at
            # the triggering boundary itself.
            self._armed_at = cycle
        self._deadline_missed = False

    def finish(self, t):
        if self._armed_at is not None:
            self._violate(
                f"run ended with {self.holds!r} still pending (armed at "
                f"cycle {self._armed_at}, bound {self.cycles} cycles)", t)
            self._armed_at = None


class Sequence(TemporalAssertion):
    """REPRO-A905: once ``steps[0]`` matches at a boundary, every
    ``steps[i]`` must hold ``i`` boundaries later."""

    kind = "sequence"

    def __init__(self, steps: list[str], name: str | None = None):
        if len(steps) < 2:
            raise AssertionSpecError("sequence needs at least two steps")
        super().__init__(name or f"sequence({' ; '.join(steps)})")
        self.steps = list(steps)
        self._codes = [_compile(step) for step in steps]
        #: active matches: next step index each must satisfy.
        self._active: list[tuple[int, int]] = []  # (started_at, step)

    def on_boundary(self, cycle, t, values):
        survivors: list[tuple[int, int]] = []
        for started_at, step in self._active:
            if evaluate(self.steps[step], self._codes[step], values):
                if step + 1 < len(self.steps):
                    survivors.append((started_at, step + 1))
            else:
                self._violate(
                    f"step {step} ({self.steps[step]!r}) of the "
                    f"sequence started at cycle {started_at} is false",
                    t, cycle)
        self._active = survivors
        if evaluate(self.steps[0], self._codes[0], values):
            self._active.append((cycle, 1))

    def finish(self, t):
        for started_at, step in self._active:
            self._violate(
                f"run ended mid-sequence (started at cycle "
                f"{started_at}, next step {step} of "
                f"{len(self.steps)})", t)
        self._active = []


_BUILDERS = {
    "invariant": lambda spec: Invariant(
        _require(spec, "expr"), name=spec.get("name")),
    "stable_during": lambda spec: StableDuring(
        _require(spec, "signal"), _require(spec, "phase"),
        phase_signal=spec.get("phase_signal", "phase"),
        name=spec.get("name")),
    "implies_next_cycle": lambda spec: ImpliesNextCycle(
        _require(spec, "if"), _require(spec, "then"),
        name=spec.get("name")),
    "eventually_within": lambda spec: EventuallyWithin(
        _require(spec, "when"), _require(spec, "holds"),
        spec.get("cycles", 1), name=spec.get("name")),
    "sequence": lambda spec: Sequence(
        _require(spec, "steps"), name=spec.get("name")),
}


def _require(spec: dict, key: str):
    try:
        return spec[key]
    except KeyError:
        raise AssertionSpecError(
            f"assertion spec {spec.get('type', '?')!r} is missing the "
            f"{key!r} field") from None


def build_assertion(spec: dict) -> TemporalAssertion:
    """One assertion from its JSON spec object."""
    if not isinstance(spec, dict):
        raise AssertionSpecError(f"assertion spec must be an object; "
                                 f"got {spec!r}")
    kind = spec.get("type")
    builder = _BUILDERS.get(kind)
    if builder is None:
        raise AssertionSpecError(
            f"unknown assertion type {kind!r}; expected one of "
            f"{sorted(_BUILDERS)}")
    return builder(spec)


def build_engine(specs: list[dict]) -> "AssertionEngine":
    """An engine from a list of spec objects."""
    return AssertionEngine([build_assertion(spec) for spec in specs])


def load_assertion_specs(path) -> list[dict]:
    """Raw spec dicts from an ``--assert-file`` (picklable form).

    Multi-trial fan-out ships these to workers and compiles per trial;
    compiled expression code objects do not pickle.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AssertionSpecError(f"cannot read assertion file {path}: "
                                 f"{exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise AssertionSpecError(f"{path}: not valid JSON "
                                 f"({exc.msg})") from exc
    if isinstance(payload, dict):
        specs = payload.get("assertions")
    else:
        specs = payload
    if not isinstance(specs, list) or not specs:
        raise AssertionSpecError(
            f"{path}: expected {{\"assertions\": [...]}} with at least "
            f"one spec")
    for spec in specs:  # fail fast on malformed specs
        build_assertion(spec)
    return specs


def load_assertions(path) -> "AssertionEngine":
    """Load an ``--assert-file``: JSON ``{"assertions": [...]}``."""
    return build_engine(load_assertion_specs(path))


class AssertionEngine:
    """Feeds a waveform stream through a set of temporal assertions."""

    def __init__(self, assertions: list[TemporalAssertion]):
        self.assertions = list(assertions)
        self._finished = False
        self._last_t = 0.0

    def __len__(self) -> int:
        return len(self.assertions)

    def on_change(self, t: float, signal: str, value) -> None:
        self._last_t = max(self._last_t, float(t))
        for assertion in self.assertions:
            assertion.on_change(t, signal, value)

    def on_boundary(self, cycle: int, t: float, values: dict) -> None:
        self._last_t = max(self._last_t, float(t))
        for assertion in self.assertions:
            assertion.on_boundary(cycle, t, values)

    def finish(self, t: float | None = None) -> list[RuntimeDiagnostic]:
        """Run end-of-stream obligations; idempotent."""
        if not self._finished:
            self._finished = True
            for assertion in self.assertions:
                assertion.finish(self._last_t if t is None else t)
        return self.violations

    @property
    def violations(self) -> list[RuntimeDiagnostic]:
        return [v for assertion in self.assertions
                for v in assertion.violations]
