"""Cycle profiler: settling vs dead time per phase, critical transfers.

The synchronous protocol advances a cycle in three colour phases; each
phase lasts as long as the clock chemistry takes, but the *useful* work
inside it -- the computational transfers the phase gates -- finishes
earlier.  The gap is dead time: simulated time the machine spends
waiting on a conservatively long phase.  Measuring it per phase is the
input ROADMAP item 3 (adaptive clocking) needs: a phase whose transfers
consistently settle at 40% of its window can be advanced early.

The profiler consumes the ``(span, phases, transfers, boundary_wait)``
records a :class:`~repro.waves.probe.WaveformProbe` accumulates -- the
same phase/transfer decomposition the tracer emits as spans, so the
profile and the trace can never disagree.  (Older three-element records
without the boundary wait are still accepted.)

Definitions (per cycle, per phase)
----------------------------------
settling time
    from phase start to the end of the last transfer that *starts* in
    the phase (0 when the phase hosts no transfer).
dead time
    phase duration minus settling time, clamped at 0.
critical transfer
    the transfer with the latest end time in the cycle -- the one that
    sets the cycle's computational length.
boundary wait (recoverable dead time)
    measured by the machine itself: simulated time between the moment
    the adaptive settling condition first held and the actual cycle
    boundary.  Under fixed clocking this is exactly what
    ``clocking="adaptive"`` recovers; under adaptive clocking it is ~0.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class PhaseProfile:
    """Aggregate settling statistics for one colour phase."""

    color: str
    n_cycles: int = 0
    total_duration: float = 0.0
    total_settling: float = 0.0
    total_dead: float = 0.0
    n_transfers: int = 0

    @property
    def mean_duration(self) -> float:
        return self.total_duration / self.n_cycles if self.n_cycles else 0.0

    @property
    def mean_settling(self) -> float:
        return self.total_settling / self.n_cycles if self.n_cycles else 0.0

    @property
    def dead_fraction(self) -> float:
        return (self.total_dead / self.total_duration
                if self.total_duration > 0 else 0.0)

    def to_dict(self) -> dict:
        return {"color": self.color, "n_cycles": self.n_cycles,
                "mean_duration": self.mean_duration,
                "mean_settling": self.mean_settling,
                "dead_fraction": self.dead_fraction,
                "n_transfers": self.n_transfers}


@dataclass(slots=True)
class CycleProfile:
    """One cycle's attribution: where the time went."""

    cycle: int
    t0: float
    t1: float
    #: per-phase (color, duration, settling, dead) tuples in order.
    phases: list = field(default_factory=list)
    #: name of the transfer ending last in the cycle ("" if none).
    critical_transfer: str = ""
    #: end time of that transfer relative to cycle start.
    critical_t: float = 0.0
    #: recoverable dead time after digital settling (machine-measured).
    boundary_wait: float = 0.0

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def dead_time(self) -> float:
        return sum(dead for _c, _d, _s, dead in self.phases)

    def to_dict(self) -> dict:
        return {"cycle": self.cycle, "t0": self.t0, "t1": self.t1,
                "critical_transfer": self.critical_transfer,
                "critical_t": self.critical_t,
                "dead_time": self.dead_time,
                "boundary_wait": self.boundary_wait,
                "phases": [{"color": c, "duration": d, "settling": s,
                            "dead": dead}
                           for c, d, s, dead in self.phases]}


@dataclass(slots=True)
class CycleProfileReport:
    """The full profile: per-cycle rows plus per-phase aggregates."""

    cycles: list
    phases: dict

    @property
    def n_cycles(self) -> int:
        return len(self.cycles)

    @property
    def total_time(self) -> float:
        return sum(row.duration for row in self.cycles)

    @property
    def dead_time_fraction(self) -> float:
        """Fraction of total simulated time the machine spent waiting."""
        total = self.total_time
        if total <= 0:
            return 0.0
        return sum(row.dead_time for row in self.cycles) / total

    @property
    def recoverable_dead_time(self) -> float:
        """Total machine-measured boundary wait: the simulated time an
        adaptive boundary would have cut from this run."""
        return sum(row.boundary_wait for row in self.cycles)

    @property
    def recoverable_fraction(self) -> float:
        """Recoverable dead time as a fraction of total simulated time."""
        total = self.total_time
        if total <= 0:
            return 0.0
        return self.recoverable_dead_time / total

    def critical_transfer_counts(self) -> dict:
        """How often each transfer set a cycle's length."""
        counts: dict[str, int] = {}
        for row in self.cycles:
            if row.critical_transfer:
                counts[row.critical_transfer] = \
                    counts.get(row.critical_transfer, 0) + 1
        return dict(sorted(counts.items(),
                           key=lambda kv: (-kv[1], kv[0])))

    def to_dict(self) -> dict:
        return {"n_cycles": self.n_cycles,
                "total_time": self.total_time,
                "dead_time_fraction": self.dead_time_fraction,
                "recoverable_dead_time": self.recoverable_dead_time,
                "recoverable_fraction": self.recoverable_fraction,
                "critical_transfers": self.critical_transfer_counts(),
                "phases": {color: profile.to_dict()
                           for color, profile in self.phases.items()},
                "cycles": [row.to_dict() for row in self.cycles]}

    def render(self) -> str:
        """Human-readable summary (deterministic)."""
        return render_profile(self.to_dict())


def render_profile(profile: dict) -> str:
    """Render a serialized profile (``CycleProfileReport.to_dict``).

    Operating on the dict lets the multi-trial runner render worker
    results without reconstructing report objects.
    """
    lines = [f"cycle profile: {profile['n_cycles']} cycles, "
             f"{profile['total_time']:.4g} time units, "
             f"dead-time fraction {profile['dead_time_fraction']:.3f}"]
    recoverable = profile.get("recoverable_fraction")
    if recoverable is not None:
        lines.append(
            f"  recoverable (adaptive clocking): "
            f"{profile['recoverable_dead_time']:.4g} time units "
            f"({recoverable:.3f} of total)")
    for color, agg in profile["phases"].items():
        lines.append(
            f"  phase {color:<6} mean duration "
            f"{agg['mean_duration']:.4g}, mean settling "
            f"{agg['mean_settling']:.4g}, dead fraction "
            f"{agg['dead_fraction']:.3f}")
    counts = profile["critical_transfers"]
    if counts:
        lines.append("  critical transfers:")
        for name, count in counts.items():
            lines.append(f"    {name}: {count}/"
                         f"{profile['n_cycles']} cycles")
    return "\n".join(lines)


def profile_cycles(cycle_records) -> CycleProfileReport:
    """Profile a probe's ``cycle_records``.

    ``cycle_records`` is a list of ``(span, phases, transfers[,
    boundary_wait])`` where ``span`` is a
    :class:`~repro.obs.records.CycleSpan`, ``phases`` a list of
    ``(color, t0, t1)``, ``transfers`` a list of ``(name, t0, t1,
    args)`` and ``boundary_wait`` the machine-measured recoverable dead
    time (0 assumed for legacy three-element records).
    """
    rows = []
    aggregates: dict[str, PhaseProfile] = {}
    for record in cycle_records:
        span, phases, transfers = record[0], record[1], record[2]
        boundary_wait = float(record[3]) if len(record) > 3 else 0.0
        row = CycleProfile(cycle=span.index, t0=span.t0, t1=span.t1,
                           boundary_wait=boundary_wait)
        for color, p0, p1 in phases:
            duration = p1 - p0
            hosted = [tr for tr in transfers if p0 <= tr[1] < p1]
            settling = max((tr[2] for tr in hosted), default=p0) - p0
            settling = min(max(settling, 0.0), duration)
            dead = duration - settling
            row.phases.append((color, duration, settling, dead))
            agg = aggregates.get(color)
            if agg is None:
                agg = aggregates[color] = PhaseProfile(color)
            agg.n_cycles += 1
            agg.total_duration += duration
            agg.total_settling += settling
            agg.total_dead += dead
            agg.n_transfers += len(hosted)
        if transfers:
            name, _t0, t1, _args = max(
                transfers, key=lambda tr: (tr[2], tr[0]))
            row.critical_transfer = name
            row.critical_t = t1 - span.t0
        rows.append(row)
    return CycleProfileReport(cycles=rows, phases=aggregates)
