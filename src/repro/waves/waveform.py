"""The waveform data model: digital signals as compact change-lists.

A :class:`Waveform` holds named signal tracks on the simulated-time
axis.  Each track stores only *changes* -- ``(t, value)`` pairs where
the value differs from the previous one -- which is what makes hours of
simulated time cheap to keep and what maps one-to-one onto the VCD
value-change format (:mod:`repro.waves.vcd`).

Four signal kinds cover the digital domain of the protocol:

``bit``
    a dual-rail logic level: ``0``, ``1``, or ``"x"`` (rails not
    cleanly settled, the waveform mirror of
    :meth:`repro.digital.bits.Bit.read_soft` reporting unsettled).
``int``
    a small unsigned integer (a counter value, an event count); the
    declared ``width`` sizes the VCD vector.
``real``
    an analog level riding along for context (register quantity,
    boundary residual, cycle period).
``state``
    a symbolic value (FSM state name, dominant clock colour).

The JSONL wire format adds one record type to the trace schema of
:mod:`repro.obs.records`::

    {"type": "wave", "signal": "ctr_b0", "kind": "bit",
     "t": 0.3, "value": 1}

so waveforms stream through the existing :mod:`repro.obs.sinks`
infrastructure and ``python -m repro report`` can summarise them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Signal kinds a track may declare.
KINDS = ("bit", "int", "real", "state")

#: Accepted ``bit`` values (unsettled rails read as ``"x"``).
BIT_VALUES = (0, 1, "x")


class WaveError(ReproError):
    """Raised for invalid waveform declarations or recordings."""


@dataclass(slots=True)
class WaveChange:
    """One value change of one signal (the JSONL ``wave`` record)."""

    signal: str
    kind: str
    t: float
    value: object

    def to_dict(self) -> dict:
        return {"type": "wave", "signal": self.signal, "kind": self.kind,
                "t": self.t, "value": self.value}


class SignalTrack:
    """Change-list of one signal."""

    __slots__ = ("name", "kind", "width", "times", "values")

    def __init__(self, name: str, kind: str, width: int = 1):
        if kind not in KINDS:
            raise WaveError(f"unknown signal kind {kind!r}; expected one "
                            f"of {KINDS}")
        if width < 1:
            raise WaveError(f"signal {name!r}: width must be >= 1")
        self.name = name
        self.kind = kind
        self.width = int(width)
        self.times: list[float] = []
        self.values: list = []

    def record(self, t: float, value) -> bool:
        """Append a change; returns ``False`` when the value repeats.

        Times must be non-decreasing -- tracks are streamed in
        simulation order.  A same-time re-record of a *different* value
        overwrites the previous one (last write wins), matching VCD
        semantics of multiple changes in one tick.
        """
        t = float(t)
        value = self._coerce(value)
        if self.times:
            if t < self.times[-1]:
                raise WaveError(
                    f"signal {self.name!r}: time went backwards "
                    f"({t:g} after {self.times[-1]:g})")
            if value == self.values[-1]:
                return False
            if t == self.times[-1]:
                self.values[-1] = value
                return True
        self.times.append(t)
        self.values.append(value)
        return True

    def _coerce(self, value):
        if self.kind == "bit":
            if isinstance(value, bool):
                return int(value)
            if value in BIT_VALUES:
                return value
            raise WaveError(f"signal {self.name!r}: bit value must be "
                            f"0, 1 or 'x'; got {value!r}")
        if self.kind == "int":
            return int(value)
        if self.kind == "real":
            return float(value)
        return str(value)

    @property
    def n_changes(self) -> int:
        return len(self.times)

    def value_at(self, t: float):
        """Last recorded value at or before ``t`` (``None`` before the
        first change)."""
        result = None
        for time, value in zip(self.times, self.values):
            if time > t:
                break
            result = value
        return result


class Waveform:
    """An ordered collection of signal tracks.

    Declaration order is meaningful: it fixes the VCD variable order and
    the tie-break for same-tick changes, which is what makes exports
    byte-identical across runs.
    """

    def __init__(self):
        self.signals: dict[str, SignalTrack] = {}

    def declare(self, name: str, kind: str, width: int = 1) -> SignalTrack:
        """Register a signal; re-declaring with the same shape is a
        no-op, with a different shape an error."""
        track = self.signals.get(name)
        if track is not None:
            if track.kind != kind or track.width != int(width):
                raise WaveError(
                    f"signal {name!r} re-declared as {kind}/{width} "
                    f"(was {track.kind}/{track.width})")
            return track
        track = SignalTrack(name, kind, width)
        self.signals[name] = track
        return track

    def record(self, name: str, t: float, value,
               kind: str | None = None, width: int = 1) -> bool:
        """Record one change, auto-declaring on first use when ``kind``
        is given."""
        track = self.signals.get(name)
        if track is None:
            if kind is None:
                raise WaveError(f"signal {name!r} was never declared "
                                f"(pass kind= on first record)")
            track = self.declare(name, kind, width)
        return track.record(t, value)

    def __contains__(self, name: str) -> bool:
        return name in self.signals

    def __getitem__(self, name: str) -> SignalTrack:
        try:
            return self.signals[name]
        except KeyError:
            raise WaveError(f"no signal {name!r} in waveform") from None

    @property
    def n_signals(self) -> int:
        return len(self.signals)

    @property
    def n_changes(self) -> int:
        return sum(track.n_changes for track in self.signals.values())

    @property
    def t_final(self) -> float:
        return max((track.times[-1] for track in self.signals.values()
                    if track.times), default=0.0)

    def changes(self) -> list[WaveChange]:
        """All changes in time order (declaration order breaks ties)."""
        order = {name: i for i, name in enumerate(self.signals)}
        merged = [
            WaveChange(track.name, track.kind, t, value)
            for track in self.signals.values()
            for t, value in zip(track.times, track.values)
        ]
        merged.sort(key=lambda c: (c.t, order[c.signal]))
        return merged


def waveform_from_trajectory(trajectory, names=None,
                             max_samples: int = 512) -> Waveform:
    """Chart trajectory species as ``real`` lanes (post-hoc probe).

    For raw ``.crn`` simulations there is no digital driver to hold a
    live probe; this converts an integrated
    :class:`~repro.crn.simulation.result.Trajectory` into a waveform
    after the fact, subsampling to at most ``max_samples`` rows per
    signal (the change-list compresses plateaus further).
    """
    waveform = Waveform()
    names = list(names) if names is not None else list(trajectory.names)
    unknown = [n for n in names if n not in trajectory.names]
    if unknown:
        raise WaveError(f"species {unknown} not in trajectory "
                        f"(have {list(trajectory.names)})")
    times = trajectory.times
    stride = max(1, times.size // max(int(max_samples), 1))
    rows = list(range(0, times.size, stride))
    if rows and rows[-1] != times.size - 1:
        rows.append(times.size - 1)
    for name in names:
        waveform.declare(name, "real")
        series = trajectory.column(name)
        for i in rows:
            waveform.record(name, float(times[i]), float(series[i]))
    return waveform


def write_waveform_jsonl(waveform: Waveform, path) -> None:
    """Stream a waveform as JSONL ``wave`` records (obs sink format)."""
    from repro.obs.sinks import JsonlSink

    sink = JsonlSink(path)
    try:
        for change in waveform.changes():
            sink.write(change)
    finally:
        sink.close()
