"""The digital logic-analyzer layer: waveforms, VCD, assertions, profiling.

This package gives the digital domain of the synchronous protocol a
first-class observability surface (the chemistry already has one in
:mod:`repro.obs`):

- :mod:`repro.waves.waveform` -- change-list signal tracks (bit / int /
  real / state) and the JSONL ``wave`` record,
- :mod:`repro.waves.vcd` -- deterministic, GTKWave-loadable VCD export,
- :mod:`repro.waves.probe` -- the :class:`WaveformProbe` drivers accept
  (``probe=``), with a zero-overhead :data:`NULL_PROBE` disabled path,
- :mod:`repro.waves.assertions` -- SVA-lite temporal assertions
  (REPRO-A901..A905) evaluated online over the waveform stream,
- :mod:`repro.waves.profiler` -- per-phase settling/dead-time
  attribution and critical-transfer naming,
- :mod:`repro.waves.output` -- violation rendering through the shared
  lint text/JSON/SARIF renderers,
- :mod:`repro.waves.runner` -- canned scenarios behind
  ``python -m repro waves``.

See ``docs/waves.md`` for the assertion catalogue and a VCD walkthrough.
"""

from repro.waves.assertions import (ASSERTION_CODES, AssertionEngine,
                                    AssertionSpecError, build_assertion,
                                    build_engine, load_assertion_specs,
                                    load_assertions)
from repro.waves.probe import (NULL_PROBE, NullWaveformProbe,
                               WaveformProbe, ensure_probe, signal_key)
from repro.waves.profiler import (CycleProfileReport, profile_cycles,
                                  render_profile)
from repro.waves.runner import SCENARIOS, run_scenario, run_trials
from repro.waves.vcd import render_vcd, write_vcd
from repro.waves.waveform import (WaveChange, WaveError, Waveform,
                                  waveform_from_trajectory,
                                  write_waveform_jsonl)

__all__ = [
    "ASSERTION_CODES",
    "AssertionEngine",
    "AssertionSpecError",
    "build_assertion",
    "build_engine",
    "load_assertion_specs",
    "load_assertions",
    "NULL_PROBE",
    "NullWaveformProbe",
    "WaveformProbe",
    "ensure_probe",
    "signal_key",
    "CycleProfileReport",
    "profile_cycles",
    "render_profile",
    "SCENARIOS",
    "run_scenario",
    "run_trials",
    "render_vcd",
    "write_vcd",
    "WaveChange",
    "WaveError",
    "Waveform",
    "waveform_from_trajectory",
    "write_waveform_jsonl",
]
