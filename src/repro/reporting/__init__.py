"""Reporting: ASCII figures and markdown tables for the benchmarks."""

from repro.reporting.ascii_plot import (plot_samples, plot_series,
                                        plot_trajectory)
from repro.reporting.tables import (csv_table, format_cell, markdown_table,
                                    write_report)

__all__ = [
    "csv_table",
    "format_cell",
    "markdown_table",
    "plot_samples",
    "plot_series",
    "plot_trajectory",
    "write_report",
]
