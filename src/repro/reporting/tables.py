"""Markdown/CSV table rendering for benchmark reports."""

from __future__ import annotations

from collections.abc import Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def markdown_table(headers: Sequence[str],
                   rows: Sequence[Sequence]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    header_cells = [str(h) for h in headers]
    body = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells):
        padded = [c.ljust(w) for c, w in zip(cells, widths)]
        return "| " + " | ".join(padded) + " |"

    lines = [render_row(header_cells),
             "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


def csv_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(format_cell(c) for c in row))
    return "\n".join(lines)


def write_report(path, title: str, sections: list[tuple[str, str]]) -> None:
    """Write a markdown report file with titled sections."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {title}\n\n")
        for heading, body in sections:
            handle.write(f"## {heading}\n\n{body}\n\n")
