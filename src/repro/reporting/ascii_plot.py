"""Terminal-friendly plots for trajectories and series.

The benchmarks regenerate the paper's figures as text: an ASCII line plot
is enough to verify the *shape* (oscillation, crisp staircase transfers,
filter tracking) without a graphics stack.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.crn.simulation.result import Trajectory

_GLYPHS = "#*+xo@%&"


def plot_series(times: np.ndarray, series_map: dict[str, np.ndarray],
                width: int = 72, height: int = 18,
                title: str = "") -> str:
    """Render several aligned series as one ASCII chart."""
    times = np.asarray(times, dtype=float)
    if times.size < 2:
        raise ValueError("need at least two samples")
    all_values = np.concatenate([np.asarray(v, dtype=float)
                                 for v in series_map.values()])
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for k, (name, series) in enumerate(series_map.items()):
        glyph = _GLYPHS[k % len(_GLYPHS)]
        series = np.asarray(series, dtype=float)
        columns = np.linspace(times[0], times[-1], width)
        values = np.interp(columns, times, series)
        for col, value in enumerate(values):
            row = int(round((hi - value) / (hi - lo) * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{_GLYPHS[k % len(_GLYPHS)]}={name}"
                        for k, name in enumerate(series_map))
    lines.append(legend)
    lines.append(f"{hi:10.3f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:10.3f} +" + "-" * width)
    lines.append(" " * 12 + f"t = {times[0]:g} ... {times[-1]:g}")
    return "\n".join(lines)


def plot_trajectory(trajectory: Trajectory, species: Sequence[str],
                    width: int = 72, height: int = 18,
                    title: str = "") -> str:
    """ASCII chart of selected species of one trajectory."""
    series = {name: trajectory.column(name) for name in species}
    return plot_series(trajectory.times, series, width=width,
                       height=height, title=title)


def plot_samples(series_map: dict[str, Sequence[float]], width: int = 72,
                 height: int = 14, title: str = "") -> str:
    """ASCII chart of per-cycle sample sequences (stairstep x-axis)."""
    lengths = {len(v) for v in series_map.values()}
    n = max(lengths)
    times = np.arange(n, dtype=float)
    padded = {}
    for name, values in series_map.items():
        values = np.asarray(values, dtype=float)
        if values.size < n:
            values = np.pad(values, (0, n - values.size), mode="edge")
        padded[name] = values
    return plot_series(times, padded, width=width, height=height,
                       title=title)
