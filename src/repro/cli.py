"""Command-line interface: ``python -m repro <command>``.

Commands
--------
simulate    integrate a ``.crn`` file and print final quantities / a plot
clock       run the molecular clock and report period/jitter
filter      stream samples through a synthesized filter
counter     run the binary counter
fsm         drive a built-in molecular FSM over a symbol word
robustness  run a fault-injection robustness campaign
conformance cross-check every engine against invariants and each other
waves       run a logic-analyzer scenario (waveforms + assertions)
dsd         compile a ``.crn`` file to strand displacement (+ FASTA)
lint        static analysis of ``.crn`` files and built-in circuits
report      summarise a recorded JSONL trace
serve       run job batches through the async simulation service

The simulation commands accept ``--trace FILE`` (``.jsonl`` for the
canonical line format, ``.json`` for a Chrome trace-event file) and
``--metrics FILE`` (a schema-versioned metrics snapshot); see
``docs/observability.md``.  The digital drivers additionally accept
``--vcd FILE`` (a GTKWave-loadable waveform dump) and
``--assert-file FILE`` (temporal assertions, REPRO-A901..A905 on
violation); see ``docs/waves.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.crn.parser import load_network
from repro.crn.rates import RateScheme
from repro.crn.simulation import SimulationOptions, simulate
from repro.errors import ReproError


def _add_telemetry_options(parser) -> None:
    parser.add_argument("--trace", default="", metavar="FILE",
                        help="record a trace (.jsonl = line records, "
                             ".json = Chrome trace events)")
    parser.add_argument("--metrics", default="", metavar="FILE",
                        help="write a metrics snapshot (JSON)")


def _open_telemetry(args):
    """(tracer, metrics) for a command, honouring its flags.

    Trace files are opened (or probed) eagerly so an unwritable path
    fails before the simulation runs, with a clean ``error:`` message.
    """
    from repro.obs import (ChromeTraceSink, JsonlSink, MetricsRegistry,
                           Tracer)

    tracer = None
    if args.trace:
        sink = (ChromeTraceSink(args.trace)
                if args.trace.endswith(".json") else JsonlSink(args.trace))
        tracer = Tracer(sink)
    metrics = MetricsRegistry() if (args.metrics or args.trace) else None
    return tracer, metrics


def _close_telemetry(args, tracer, metrics) -> None:
    if tracer is not None:
        tracer.emit_metrics(metrics)
        tracer.close()
        print(f"wrote trace to {args.trace}")
    if args.metrics and metrics is not None:
        metrics.write_json(args.metrics)
        print(f"wrote metrics to {args.metrics}")


def _print_diagnostics(diagnostics) -> None:
    for diagnostic in diagnostics:
        print(diagnostic.format(), file=sys.stderr)


def _add_waves_options(parser) -> None:
    parser.add_argument("--vcd", default="", metavar="FILE",
                        help="dump the digital waveform as a "
                             "GTKWave-loadable VCD file")
    parser.add_argument("--assert-file", default="", metavar="FILE",
                        dest="assert_file",
                        help="JSON temporal-assertion spec evaluated "
                             "online (REPRO-A9xx on violation, exit 1)")


def _add_monitor_config_option(parser) -> None:
    parser.add_argument("--monitor-config", default="", metavar="FILE",
                        dest="monitor_config",
                        help="JSON file overriding MonitorConfig "
                             "thresholds (jitter, residual, crispness)")


def _load_monitor_config(args):
    if not getattr(args, "monitor_config", ""):
        return None
    from repro.obs.monitors import load_monitor_config

    return load_monitor_config(args.monitor_config)


def _make_probe(args):
    """A live probe when any waves flag was passed, else ``None``."""
    if not (args.vcd or args.assert_file):
        return None
    from repro.waves import WaveformProbe, load_assertions

    engine = load_assertions(args.assert_file) if args.assert_file \
        else None
    return WaveformProbe(assertions=engine)


def _finish_probe(args, probe) -> int:
    """Export the VCD, print violations; exit status contribution."""
    if probe is None:
        return 0
    from repro.waves import write_vcd
    from repro.waves.output import render_violations

    violations = probe.finish()
    if args.vcd:
        write_vcd(probe.waveform, args.vcd)
        print(f"wrote VCD waveform to {args.vcd} "
              f"({probe.waveform.n_signals} signals, "
              f"{probe.waveform.n_changes} changes)")
    if args.assert_file:
        target = getattr(args, "command", None) or "run"
        print(render_violations(violations, f"waves:{target}"),
              file=sys.stderr)
    return 1 if violations else 0


def _add_simulate(subparsers) -> None:
    parser = subparsers.add_parser(
        "simulate", help="integrate a .crn file")
    parser.add_argument("file", help="path to a .crn network file")
    parser.add_argument("--t", type=float, default=10.0,
                        help="final time (default 10)")
    parser.add_argument("--method", default="LSODA",
                        help="ODE method (LSODA/BDF/Radau/RK45/"
                             "internal-rk45)")
    parser.add_argument("--engine", default="ode",
                        choices=["ode", "ssa", "tau"],
                        help="simulation engine (default ode)")
    parser.add_argument("--backend", default="reference",
                        help="execution backend for stochastic engines "
                             "(reference/batch; default reference)")
    parser.add_argument("--seed", type=int, default=None,
                        help="RNG seed for stochastic engines")
    parser.add_argument("--plot", default="",
                        help="comma-separated species to plot as ASCII")
    parser.add_argument("--fast", type=float, default=1000.0)
    parser.add_argument("--slow", type=float, default=1.0)
    _add_telemetry_options(parser)
    _add_waves_options(parser)
    parser.set_defaults(run=_run_simulate)


def _run_simulate(args) -> int:
    tracer, metrics = _open_telemetry(args)
    network = load_network(args.file)
    scheme = RateScheme({"fast": args.fast, "slow": args.slow})
    seed = None
    if args.engine != "ode":
        import numpy as np

        seed = np.random.default_rng(args.seed)
    options = SimulationOptions(solver=args.method, n_samples=400,
                                seed=seed, backend=args.backend,
                                tracer=tracer, metrics=metrics)
    trajectory = simulate(network, args.t, args.engine, scheme=scheme,
                          options=options)
    print(network.summary())
    if args.plot:
        from repro.reporting import plot_trajectory

        species = [s.strip() for s in args.plot.split(",") if s.strip()]
        print(plot_trajectory(trajectory, species))
    print("final quantities:")
    for name, value in trajectory.final_state().items():
        if abs(value) > 1e-9:
            print(f"  {name:20s} {value:12.4f}")
    status = _check_simulated_waveform(args, trajectory)
    _close_telemetry(args, tracer, metrics)
    return status


def _check_simulated_waveform(args, trajectory) -> int:
    """Post-hoc ``--vcd``/``--assert-file`` for a raw .crn simulation.

    A plain network has no cycle boundaries, so assertions are judged
    per sampled row (``invariant`` is the natural type here; the
    boundary index is the row index and every species is a name in the
    expression namespace).
    """
    if not (args.vcd or args.assert_file):
        return 0
    from repro.waves import (load_assertions, waveform_from_trajectory,
                             write_vcd)
    from repro.waves.output import render_violations
    from repro.waves.probe import signal_key

    waveform = waveform_from_trajectory(trajectory)
    if args.vcd:
        write_vcd(waveform, args.vcd)
        print(f"wrote VCD waveform to {args.vcd} "
              f"({waveform.n_signals} signals, "
              f"{waveform.n_changes} changes)")
    if not args.assert_file:
        return 0
    engine = load_assertions(args.assert_file)
    times = trajectory.times
    for row in range(times.size):
        values = {signal_key(name): float(value) for name, value
                  in zip(trajectory.names, trajectory.states[row])}
        values["t"] = float(times[row])
        values["cycle"] = row
        engine.on_boundary(row, float(times[row]), values)
    violations = engine.finish()
    print(render_violations(violations, f"waves:{args.file}"),
          file=sys.stderr)
    return 1 if violations else 0


def _add_clock(subparsers) -> None:
    parser = subparsers.add_parser("clock", help="run a clock "
                                                 "oscillator")
    parser.add_argument("--mass", type=float, default=20.0)
    parser.add_argument("--t", type=float, default=40.0)
    parser.add_argument("--oscillator", default="molecular",
                        help="registered clock chemistry "
                             "(molecular, relaxation, ...)")
    _add_telemetry_options(parser)
    parser.set_defaults(run=_run_clock)


def _run_clock(args) -> int:
    from repro.core.clock import build_clock
    from repro.obs import clock_diagnostics
    from repro.reporting import plot_trajectory

    tracer, metrics = _open_telemetry(args)
    network, clock, protocol = build_clock(mass=args.mass,
                                           oscillator=args.oscillator)
    trajectory = simulate(network, args.t, n_samples=2000,
                          tracer=tracer, metrics=metrics)
    print(plot_trajectory(trajectory.window(0.0, min(args.t, 12.0)),
                          clock.species_names(),
                          title=f"{args.oscillator} clock"))
    print(f"period  {clock.period(trajectory):.4f} slow time units")
    print(f"jitter  {clock.period_jitter(trajectory):.5f} (relative)")
    low, high = clock.amplitude(trajectory)
    print(f"swing   {low:.3f} .. {high:.3f}")
    diagnostics = clock_diagnostics(
        clock, trajectory,
        indicator_names={color: protocol.indicator_name(color)
                         for color in ("red", "green", "blue")})
    _print_diagnostics(diagnostics)
    if tracer is not None:
        clock.emit_trace(trajectory, tracer)
        for diagnostic in diagnostics:
            tracer.emit_diagnostic(diagnostic)
    _close_telemetry(args, tracer, metrics)
    return 0


def _add_filter(subparsers) -> None:
    parser = subparsers.add_parser(
        "filter", help="stream samples through a molecular filter")
    parser.add_argument("kind", choices=["ma", "iir"],
                        help="ma = moving average, iir = first-order "
                             "low-pass")
    parser.add_argument("--taps", type=int, default=2,
                        help="taps for the moving average")
    parser.add_argument("--input", required=True,
                        help="comma-separated samples, e.g. 10,20,40")
    parser.add_argument("--clocking", default="fixed",
                        choices=["fixed", "adaptive"],
                        help="cycle-advance strategy (adaptive ends "
                             "cycles at digital settling)")
    parser.add_argument("--oscillator", default="molecular",
                        help="registered clock chemistry "
                             "(molecular, relaxation, ...)")
    _add_telemetry_options(parser)
    _add_monitor_config_option(parser)
    parser.set_defaults(run=_run_filter)


def _run_filter(args) -> int:
    from repro.apps import iir_first_order, moving_average
    from repro.core.machine import MachineOptions, SynchronousMachine
    from repro.reporting import markdown_table

    tracer, metrics = _open_telemetry(args)
    samples = [float(v) for v in args.input.split(",") if v.strip()]
    design = (moving_average(args.taps) if args.kind == "ma"
              else iir_first_order())
    machine = SynchronousMachine(design, tracer=tracer, metrics=metrics,
                                 monitor=_load_monitor_config(args),
                                 options=MachineOptions(
                                     clocking=args.clocking,
                                     oscillator=args.oscillator))
    run = machine.run({"x": samples})
    rows = [[i, x, float(m), float(r)]
            for i, (x, m, r) in enumerate(zip(
                samples, run.outputs["y"], run.reference["y"]))]
    print(machine.network.summary())
    print(markdown_table(["n", "x[n]", "measured y[n]",
                          "reference y[n]"], rows))
    print(f"max |error| = {run.max_error():.4f}")
    _print_diagnostics(run.diagnostics)
    _close_telemetry(args, tracer, metrics)
    return 0


def _add_counter(subparsers) -> None:
    parser = subparsers.add_parser("counter",
                                   help="run the binary counter")
    parser.add_argument("--bits", type=int, default=3)
    parser.add_argument("--pulses", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    _add_telemetry_options(parser)
    _add_waves_options(parser)
    parser.set_defaults(run=_run_counter)


def _run_counter(args) -> int:
    from repro.digital import BinaryCounter

    tracer, metrics = _open_telemetry(args)
    probe = _make_probe(args)
    counter = BinaryCounter(args.bits)
    run = counter.count(args.pulses, seed=args.seed, tracer=tracer,
                        metrics=metrics, probe=probe)
    print(counter.network.summary())
    print("sequence:", run.values)
    print("overflow:", run.overflow)
    run.check(2 ** args.bits)
    print("verified against modulo arithmetic")
    status = _finish_probe(args, probe)
    _close_telemetry(args, tracer, metrics)
    return status


def _add_fsm(subparsers) -> None:
    parser = subparsers.add_parser(
        "fsm", help="drive a built-in molecular FSM over a symbol word")
    parser.add_argument("--machine", default="parity",
                        choices=["parity", "detector"],
                        help="parity tracker or sequence detector "
                             "(default parity)")
    parser.add_argument("--pattern", default="101",
                        help="binary pattern for the detector "
                             "(default 101)")
    parser.add_argument("--word", default="110101",
                        help="input symbol word (default 110101)")
    parser.add_argument("--seed", type=int, default=0)
    _add_waves_options(parser)
    parser.set_defaults(run=_run_fsm)


def _run_fsm(args) -> int:
    from repro.digital.fsm import parity_machine, sequence_detector

    probe = _make_probe(args)
    fsm = (parity_machine() if args.machine == "parity"
           else sequence_detector(args.pattern))
    run = fsm.run(list(args.word), seed=args.seed, probe=probe)
    print(fsm.network.summary())
    print("word: ", " ".join(args.word))
    print("trace:", " -> ".join(run.trace))
    for output, counts in run.output_counts.items():
        print(f"output {output!r}: {counts[-1]} emission(s) "
              f"(per step: {run.emissions(output)})")
    return _finish_probe(args, probe)


def _add_robustness(subparsers) -> None:
    from repro.scenarios import scenario_names

    parser = subparsers.add_parser(
        "robustness",
        help="run a fault-injection robustness campaign")
    parser.add_argument("--circuit", default="counter",
                        choices=list(scenario_names(tag="faults")),
                        help="circuit under test (default counter)")
    parser.add_argument("--trials", type=int, default=20,
                        help="trials per fault model (default 20)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign root seed (default 0)")
    parser.add_argument("--separation", type=float, default=None,
                        help="fast/slow separation to run at "
                             "(default: the circuit's nominal scheme)")
    parser.add_argument("--fault", action="append", default=[],
                        metavar="NAME",
                        help="fault model to campaign over (repeatable; "
                             "default: the circuit's default suite); one "
                             "of rate_mismatch, leak, dilution, "
                             "copy_number_noise, species_deletion, "
                             "clock_glitch")
    parser.add_argument("--no-margin", action="store_true",
                        help="skip the robustness-margin bisection")
    parser.add_argument("--margin-trials", type=int, default=4,
                        help="trials per margin probe point (default 4)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: CPU count; "
                             "1 forces serial)")
    parser.add_argument("--json", default="", metavar="FILE",
                        help="write the full campaign report as JSON")
    _add_monitor_config_option(parser)
    parser.set_defaults(run=_run_robustness)


def _run_robustness(args) -> int:
    import json

    from repro.faults import RobustnessCampaign
    from repro.faults.models import (ClockGlitch, CopyNumberNoise,
                                     Dilution, Leak, RateMismatch,
                                     SpeciesDeletion)

    factories = {"rate_mismatch": RateMismatch, "leak": Leak,
                 "dilution": Dilution,
                 "copy_number_noise": CopyNumberNoise,
                 "species_deletion": SpeciesDeletion,
                 "clock_glitch": ClockGlitch}
    models = None
    if args.fault:
        unknown = [n for n in args.fault if n not in factories]
        if unknown:
            print(f"error: unknown fault model(s) {unknown}; choose "
                  f"from {sorted(factories)}", file=sys.stderr)
            return 2
        models = [factories[name]() for name in args.fault]
    monitor = _load_monitor_config(args)
    campaign = RobustnessCampaign(
        circuit=args.circuit, models=models, trials=args.trials,
        seed=args.seed, separation=args.separation,
        n_workers=args.workers, measure_margin=not args.no_margin,
        margin_trials=args.margin_trials,
        circuit_kwargs={"monitor": monitor} if monitor else None)
    result = campaign.run()
    print(result.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote campaign report to {args.json}")
    return 0


def _add_waves(subparsers) -> None:
    from repro.waves.runner import SCENARIOS

    parser = subparsers.add_parser(
        "waves",
        help="run a logic-analyzer scenario: waveform capture, "
             "temporal assertions, cycle profile")
    parser.add_argument("--scenario", default="counter",
                        choices=list(SCENARIOS),
                        help="circuit to probe (default counter)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed (default 0)")
    parser.add_argument("--trials", type=int, default=1,
                        help="pre-seeded trials to fan out (default 1)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for multi-trial runs "
                             "(default: CPU count; 1 forces serial)")
    parser.add_argument("--trial", type=int, default=0, dest="keep_trial",
                        help="trial whose waveform --vcd keeps "
                             "(default 0)")
    parser.add_argument("--json", default="", metavar="FILE",
                        help="write the full trial report as JSON")
    parser.add_argument("--bits", type=int, default=2,
                        help="counter width (default 2)")
    parser.add_argument("--pulses", type=int, default=None,
                        help="counter pulses (default 2**bits + 2)")
    parser.add_argument("--machine", default="parity",
                        choices=["parity", "detector"],
                        help="FSM for the fsm scenario (default parity)")
    parser.add_argument("--pattern", default="101",
                        help="detector pattern (default 101)")
    parser.add_argument("--word", default="110101",
                        help="FSM input word (default 110101)")
    parser.add_argument("--taps", type=int, default=2,
                        help="moving-average taps (default 2)")
    parser.add_argument("--input", default="",
                        help="comma-separated samples for ma/iir "
                             "(default 8,4,6,2)")
    _add_waves_options(parser)
    _add_monitor_config_option(parser)
    parser.set_defaults(run=_run_waves)


def _run_waves(args) -> int:
    import json

    from repro.obs.monitors import RuntimeDiagnostic
    from repro.waves import load_assertion_specs, run_trials
    from repro.waves.output import render_violations
    from repro.waves.profiler import render_profile

    assert_specs = (load_assertion_specs(args.assert_file)
                    if args.assert_file else None)
    samples = ([float(v) for v in args.input.split(",") if v.strip()]
               if args.input else None)
    report = run_trials(
        args.scenario, trials=args.trials, seed=args.seed,
        n_workers=args.workers, keep_trial=args.keep_trial,
        assert_specs=assert_specs, monitor=_load_monitor_config(args),
        bits=args.bits, pulses=args.pulses, machine=args.machine,
        pattern=args.pattern, word=args.word, taps=args.taps,
        input_samples=samples)
    print(f"scenario {args.scenario}: {args.trials} trial(s), "
          f"root seed {args.seed}")
    for row in report["results"]:
        status = "ok" if row["ok"] else \
            f"{len(row['violations'])} violation(s)"
        print(f"  trial {row['trial']} (seed {row['seed']}): {status}")
        for line in row["summary"].get("monitor_diagnostics", []):
            print(f"    {line}")
    kept = report["kept"]
    profile = report["results"][kept["trial"]]["summary"].get("profile")
    if profile:
        print()
        print(render_profile(profile))
    if args.vcd:
        with open(args.vcd, "w", encoding="ascii") as handle:
            handle.write(kept["vcd"])
        print(f"wrote VCD waveform of trial {kept['trial']} to "
              f"{args.vcd} ({kept['n_signals']} signals, "
              f"{kept['n_changes']} changes)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote waves report to {args.json}")
    if report["violations_total"]:
        violations = [
            RuntimeDiagnostic(**{key: value for key, value in v.items()
                                 if key != "type"})
            for row in report["results"] for v in row["violations"]]
        print(render_violations(violations, f"waves:{args.scenario}"),
              file=sys.stderr)
    return 1 if report["violations_total"] else 0


def _add_conformance(subparsers) -> None:
    parser = subparsers.add_parser(
        "conformance",
        help="cross-check every simulation engine against metamorphic "
             "invariants and differential oracles")
    parser.add_argument("--budget", default="small",
                        choices=["tiny", "small", "medium", "large"],
                        help="generator budget (default small; the "
                             "nightly CI job runs large)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed; (budget, seed) names one "
                             "exact target list forever (default 0)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for ensemble oracles "
                             "(default: CPU count; 1 forces serial)")
    parser.add_argument("--json", default="", metavar="FILE",
                        help="write the deterministic JSON report")
    parser.add_argument("--corpus", default="", metavar="DIR",
                        help="replay-corpus directory for shrunk "
                             "reproducers (default "
                             "tests/conformance/corpus when it exists)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without shrinking or "
                             "writing reproducers")
    parser.add_argument("--replay", default="", metavar="FILE",
                        help="replay the invariant battery against one "
                             ".crn file (corpus reproducer) and exit")
    parser.set_defaults(run=_run_conformance)


def _run_conformance(args) -> int:
    import json
    from pathlib import Path

    from repro.conformance import replay_network, run_conformance
    from repro.conformance.runner import DEFAULT_CORPUS_DIR

    if args.replay:
        corpus = DEFAULT_CORPUS_DIR
        path = Path(args.replay)
        if not path.exists() and (corpus / path.name).exists():
            path = corpus / path.name
        network = load_network(path)
        results = replay_network(network, name=path.name,
                                 seed=args.seed)
        failures = [r for r in results if r.failed]
        for result in results:
            line = f"{result.status:5s} {result.check} [{result.engine}]"
            if result.detail:
                line += f": {result.detail}"
            print(line)
        print(f"{len(results) - len(failures)}/{len(results)} checks "
              f"passed on {path}")
        return 1 if failures else 0

    corpus_dir = args.corpus or (
        str(DEFAULT_CORPUS_DIR) if DEFAULT_CORPUS_DIR.is_dir() else None)
    report = run_conformance(
        args.budget, args.seed, n_workers=args.workers,
        corpus_dir=None if args.no_shrink else corpus_dir,
        shrink=not args.no_shrink)
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote conformance report to {args.json}")
    return 0 if report.ok else 1


def _add_dsd(subparsers) -> None:
    parser = subparsers.add_parser(
        "dsd", help="compile a .crn file to strand displacement")
    parser.add_argument("file")
    parser.add_argument("--c-max", type=float, default=10_000.0)
    parser.add_argument("--fasta", default="",
                        help="write a FASTA order sheet to this path")
    parser.set_defaults(run=_run_dsd)


def _run_dsd(args) -> int:
    from repro.dsd import compile_network
    from repro.dsd.sequences import SequenceDesigner

    network = load_network(args.file)
    compilation = compile_network(network, c_max=args.c_max)
    print(compilation.summary())
    if args.fasta:
        designer = SequenceDesigner()
        with open(args.fasta, "w", encoding="utf-8") as handle:
            handle.write(designer.to_fasta(compilation.inventory))
        print(f"wrote sequences to {args.fasta}")
    return 0


def _add_lint(subparsers) -> None:
    parser = subparsers.add_parser(
        "lint", help="statically analyse .crn files / built-in circuits")
    parser.add_argument("files", nargs="*",
                        help="paths to .crn network files")
    parser.add_argument("--circuit", action="append", default=[],
                        metavar="NAME",
                        help="lint a built-in target by name "
                             "('all' for every one); repeatable")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", dest="fmt")
    parser.add_argument("--output", default="",
                        help="write the report to this path instead of "
                             "stdout")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings, not just errors")
    parser.add_argument("--fail-on", choices=["error", "warning", "note"],
                        default=None, dest="fail_on",
                        help="lowest severity that fails the run "
                             "(default: error; --strict = warning)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE", help="disable a rule by name; "
                                             "repeatable")
    parser.add_argument("--verbose", action="store_true",
                        help="show notes, clean targets and skipped rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and codes, then exit")
    parser.set_defaults(run=_run_lint)


def _run_lint(args) -> int:
    from repro.crn.network import Network
    from repro.lint import LintConfig, lint_circuit, lint_network
    from repro.lint.builtins import BUILTIN_CIRCUITS, build_target
    from repro.lint.engine import RULE_REGISTRY, Severity
    from repro.lint.output import render_json, render_sarif, render_text

    if args.list_rules:
        for registered in RULE_REGISTRY.values():
            codes = ", ".join(registered.codes)
            print(f"{registered.name:25s} {codes}")
            print(f"{'':25s} {registered.description}")
        return 0
    names = []
    for name in args.circuit:
        if name == "all":
            names.extend(BUILTIN_CIRCUITS)
        else:
            names.append(name)
    if not args.files and not names:
        print("error: nothing to lint; pass .crn files and/or --circuit",
              file=sys.stderr)
        return 2
    config = LintConfig(disable=frozenset(args.disable))
    results = []
    for path in args.files:
        try:
            network = load_network(path)
        except OSError as exc:
            print(f"error: cannot read {path}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        results.append((path, lint_network(network, config, path=path)))
    for name in names:
        target = build_target(name)
        display = f"circuit:{name}"
        if isinstance(target, Network):
            report = lint_network(target, config, path=display)
        else:
            report = lint_circuit(target, config, path=display)
        results.append((display, report))
    renderer = {"text": lambda r: render_text(r, verbose=args.verbose),
                "json": render_json, "sarif": render_sarif}[args.fmt]
    rendered = renderer(results)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.fmt} report to {args.output}")
    else:
        print(rendered)
    fail_on = (Severity.from_name(args.fail_on)
               if args.fail_on else None)
    return max(report.exit_code(strict=args.strict, fail_on=fail_on)
               for _, report in results)


def _add_certify(subparsers) -> None:
    parser = subparsers.add_parser(
        "certify",
        help="derive static composition certificates (ISS error "
             "bounds) for .crn files, built-in circuits or cascades")
    parser.add_argument("files", nargs="*",
                        help="paths to .crn network files")
    parser.add_argument("--circuit", action="append", default=[],
                        metavar="NAME",
                        help="certify a built-in target by name "
                             "('all' for every one); repeatable")
    parser.add_argument("--cascade", default="", metavar="SPECS",
                        help="certify a composed cascade of named "
                             "designs, e.g. 'ma,iir' or 'amp:4,amp:4' "
                             "(specs: ma[:taps], iir[:feedback], "
                             "biquad, amp[:gain])")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", dest="fmt")
    parser.add_argument("--output", default="",
                        help="write the report to this path instead of "
                             "stdout")
    parser.add_argument("--noise-margin", type=float, default=None,
                        help="digital noise margin (default 0.5)")
    parser.add_argument("--signal-scale", type=float, default=None,
                        help="worst-case input amplitude (default 8)")
    parser.add_argument("--headroom", type=float, default=None,
                        help="W803 headroom factor over the certified "
                             "minimum separation (default 1.1)")
    parser.add_argument("--fail-on", choices=["error", "warning", "note"],
                        default=None, dest="fail_on",
                        help="lowest severity that fails the run "
                             "(default: error)")
    parser.set_defaults(run=_run_certify)


def _run_certify(args) -> int:
    from repro.certify.certificate import CertifyConfig
    from repro.certify.output import (certify_target, exit_code,
                                      render_json, render_sarif,
                                      render_text)
    from repro.certify.targets import build_cascade
    from repro.core.synthesis import synthesize
    from repro.crn.network import Network
    from repro.lint.builtins import BUILTIN_CIRCUITS, build_target
    from repro.lint.engine import Severity

    overrides = {key: value for key, value in (
        ("noise_margin", args.noise_margin),
        ("signal_scale", args.signal_scale),
        ("headroom", args.headroom)) if value is not None}
    config = CertifyConfig(**overrides)
    names = []
    for name in args.circuit:
        if name == "all":
            names.extend(BUILTIN_CIRCUITS)
        else:
            names.append(name)
    if not args.files and not names and not args.cascade:
        print("error: nothing to certify; pass .crn files, --circuit "
              "and/or --cascade", file=sys.stderr)
        return 2
    results = []
    for path in args.files:
        try:
            network = load_network(path)
        except OSError as exc:
            print(f"error: cannot read {path}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        results.append(certify_target(path, network, config=config))
    for name in names:
        target = build_target(name)
        display = f"circuit:{name}"
        if isinstance(target, Network):
            results.append(certify_target(display, target,
                                          config=config))
        else:
            results.append(certify_target(display, target.network,
                                          circuit=target,
                                          config=config))
    if args.cascade:
        specs = [s for s in args.cascade.split(",") if s.strip()]
        composite = build_cascade(specs)
        circuit = synthesize(composite)
        results.append(certify_target(f"cascade:{args.cascade}",
                                      circuit.network, circuit=circuit,
                                      config=config))
    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.fmt]
    rendered = renderer(results)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.fmt} report to {args.output}")
    else:
        print(rendered)
    fail_on = (Severity.from_name(args.fail_on)
               if args.fail_on else None)
    return exit_code(results, fail_on=fail_on)


def _add_report(subparsers) -> None:
    parser = subparsers.add_parser(
        "report", help="summarise a recorded JSONL trace")
    parser.add_argument("trace", help="path to a .jsonl trace file")
    parser.add_argument("--chrome", default="", metavar="FILE",
                        help="also export the Chrome trace-event view")
    parser.set_defaults(run=_run_report)


def _run_report(args) -> int:
    from repro.obs.report import load_records, summarize, write_chrome

    records = load_records(args.trace)
    print(summarize(records))
    if args.chrome:
        write_chrome(records, args.chrome)
        print(f"\nwrote Chrome trace to {args.chrome} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run a batch of jobs through the async simulation "
             "service with content-addressed result caching")
    parser.add_argument("--jobs", default="", metavar="FILE",
                        help="JSON file holding a list of job specs "
                             "(see docs/serving.md for the schema)")
    parser.add_argument("--demo", action="store_true",
                        help="run a built-in duplicate-job batch and "
                             "verify the cache serves byte-identical "
                             "responses (exit 1 on any mismatch)")
    parser.add_argument("--cache-dir", default="", metavar="DIR",
                        help="persist results to an on-disk store "
                             "(default: in-memory LRU)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for sharded ensemble "
                             "jobs (default: CPU count)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for the --demo job mix "
                             "(default 0)")
    parser.add_argument("--json", default="", metavar="FILE",
                        help="write a machine-readable run summary "
                             "(cache keys + result digests, no "
                             "timings)")
    parser.set_defaults(run=_run_serve)


def _run_serve(args) -> int:
    import asyncio
    import hashlib
    import json

    from repro.serve import (DiskResultStore, JobSpec,
                             SimulationService, build_job_mix,
                             canonical_result_bytes)

    if bool(args.jobs) == bool(args.demo):
        print("error: serve takes exactly one of --jobs FILE or "
              "--demo", file=sys.stderr)
        return 2
    if args.jobs:
        with open(args.jobs, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, list):
            print(f"error: {args.jobs} must hold a JSON list of job "
                  f"specs", file=sys.stderr)
            return 2
        specs = [JobSpec.from_dict(entry) for entry in payload]
    else:
        # Two distinct specs, each submitted twice: the second pass
        # must be served from the store, byte-for-byte.
        mix = build_job_mix(2, seed=args.seed, sweep_runs=4)
        specs = mix + mix
    store = DiskResultStore(args.cache_dir) if args.cache_dir else None

    async def drive():
        rows = []
        async with SimulationService(store,
                                     n_workers=args.workers) \
                as service:
            for spec in specs:
                handle = await service.submit(spec)
                result = await handle.result()
                digest = hashlib.sha256(
                    canonical_result_bytes(result)).hexdigest()
                rows.append({"kind": spec.kind,
                             "key": handle.cache_key,
                             "cached": handle.cached,
                             "sha256": digest})
            return rows, dict(service.stats)

    rows, stats = asyncio.run(drive())
    for row in rows:
        state = "hit " if row["cached"] else "cold"
        print(f"{state} {row['kind']:<12s} key={row['key'][:12]} "
              f"sha256={row['sha256'][:12]}")
    print(f"jobs={stats['submitted']} hits={stats['cache_hits']} "
          f"failed={stats['failed']}")
    if args.json:
        document = {"schema": "repro.serve-run/1", "results": rows,
                    "stats": stats}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote run summary to {args.json}")
    if args.demo:
        digests: dict[str, set[str]] = {}
        for row in rows:
            digests.setdefault(row["key"], set()).add(row["sha256"])
        repeats_hit = all(row["cached"] for row in rows[len(specs) // 2:])
        identical = all(len(values) == 1 for values in digests.values())
        if repeats_hit and identical:
            print("demo: duplicate jobs hit the cache with "
                  "byte-identical responses")
            return 0
        print("demo: FAILED -- duplicate jobs were not served "
              "byte-identically from the cache", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synchronous sequential computation with molecular "
                    "reactions (DAC 2011 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_simulate(subparsers)
    _add_clock(subparsers)
    _add_filter(subparsers)
    _add_counter(subparsers)
    _add_fsm(subparsers)
    _add_robustness(subparsers)
    _add_waves(subparsers)
    _add_conformance(subparsers)
    _add_dsd(subparsers)
    _add_lint(subparsers)
    _add_certify(subparsers)
    _add_report(subparsers)
    _add_serve(subparsers)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream consumer closed the pipe (e.g. ``| head``).
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
