"""Content-addressed result stores.

A result store maps a :meth:`~repro.serve.jobs.JobSpec.cache_key` to
the job's result dict.  Stored results are *pure data* -- plain JSON
values plus float64 numpy arrays at the top level -- and never contain
wall-clock timings, so a cached response is byte-identical to the
response a fresh computation would have produced (the property the
serve smoke test and E18 benchmark assert).

Two implementations share the tiny ``get``/``put`` protocol:

:class:`MemoryResultStore`
    an LRU dict, the default for an in-process service;
:class:`DiskResultStore`
    one ``<key>.json`` (+ ``<key>.npz`` when the result carries
    arrays) per entry.  Corrupted entries are **evicted with a
    warning, never served**: any decode failure deletes the files and
    reports a miss, so a damaged cache degrades to recomputation
    instead of wrong answers.
"""

from __future__ import annotations

import json
import warnings
from collections import OrderedDict
from pathlib import Path

import numpy as np

#: Version tag of the on-disk entry layout.
STORE_SCHEMA = "repro.store/1"


def canonical_result_bytes(result: dict) -> bytes:
    """The canonical wire encoding of a result (byte-identity tests).

    Arrays are rendered via ``tolist()``; Python float ``repr`` is
    shortest-round-trip, so equal bytes here really is bitwise-equal
    data.
    """
    def default(value):
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, (np.floating, np.integer)):
            return value.item()
        raise TypeError(
            f"result is not pure data: {type(value).__name__}")
    return json.dumps(result, sort_keys=True, separators=(",", ":"),
                      default=default).encode("utf-8")


class MemoryResultStore:
    """In-memory LRU store (the default)."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> dict | None:
        try:
            self._entries.move_to_end(key)
        except KeyError:
            self.misses += 1
            return None
        self.hits += 1
        return self._entries[key]

    def put(self, key: str, result: dict) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)


class DiskResultStore:
    """On-disk store: ``<key>.json`` + optional ``<key>.npz``.

    Top-level numpy arrays are split into the ``.npz`` sidecar (exact
    float64 round-trip); everything else lives in the JSON document.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.root / f"{key}.json", self.root / f"{key}.npz"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def _evict(self, key: str, reason: str) -> None:
        warnings.warn(
            f"evicting corrupted cache entry {key[:12]}…: {reason}",
            RuntimeWarning, stacklevel=3)
        for path in self._paths(key):
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, key: str) -> dict | None:
        json_path, npz_path = self._paths(key)
        if not json_path.is_file():
            self.misses += 1
            return None
        try:
            with open(json_path, encoding="utf-8") as handle:
                document = json.load(handle)
            if document.get("schema") != STORE_SCHEMA:
                raise ValueError(
                    f"unexpected schema {document.get('schema')!r}")
            result = document["result"]
            array_keys = document.get("arrays", [])
            if array_keys:
                with np.load(npz_path) as arrays:
                    for name in array_keys:
                        result[name] = arrays[name]
        except Exception as exc:  # noqa: BLE001 - any decode failure
            self._evict(key, f"{type(exc).__name__}: {exc}")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: dict) -> None:
        json_path, npz_path = self._paths(key)
        arrays = {name: value for name, value in result.items()
                  if isinstance(value, np.ndarray)}
        plain = {name: value for name, value in result.items()
                 if name not in arrays}
        document = {"schema": STORE_SCHEMA, "key": key,
                    "arrays": sorted(arrays), "result": plain}
        if arrays:
            with open(npz_path, "wb") as handle:
                np.savez(handle, **arrays)
        # Write-then-rename so a crashed put never leaves a torn JSON
        # document behind (the npz sidecar is validated on read).
        tmp_path = json_path.with_suffix(".json.tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        tmp_path.replace(json_path)
