"""The asyncio job service.

:class:`SimulationService` turns the CLI-shaped toolkit into a serving
stack: jobs come in as :class:`~repro.serve.jobs.JobSpec` values
through :meth:`~SimulationService.submit`, run on a thread pool (each
job internally shards ensembles across the
:class:`~repro.crn.simulation.sweep.ParallelSweepRunner` process pool),
and resolve through :class:`JobHandle` -- ``await handle.result()``
for the response, ``async for record in handle.progress()`` for live
telemetry bridged from the existing :class:`~repro.obs.Tracer` /
:class:`~repro.obs.MetricsRegistry` sinks.

Every result is content-addressed into the service's
:mod:`~repro.serve.cache` store before the handle resolves, so a
duplicate request -- the common case at scale -- short-circuits at
submit time and returns the stored result object itself.  The
determinism contract (canonical network form + SeedSequence-per-shard
ensembles + timing-free results) guarantees the cached response is
byte-identical to what recomputation would produce, at any worker
count.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serve.cache import MemoryResultStore
from repro.serve.jobs import JobSpec

#: Sentinel closing a handle's progress stream.
_DONE = object()


class _ProgressSink:
    """A tracer sink that forwards records into a job's progress queue.

    Engines write telemetry from the worker thread; the bridge hops
    onto the event loop with ``call_soon_threadsafe``, so consumers
    iterate :meth:`JobHandle.progress` without locks.
    """

    def __init__(self, emit):
        self._emit = emit

    def write(self, record) -> None:
        self._emit(record.to_dict())

    def close(self) -> None:
        pass


class JobHandle:
    """One submitted job: an awaitable result plus a progress stream."""

    def __init__(self, job_id: int, spec: JobSpec, cache_key: str,
                 future: asyncio.Future, queue: asyncio.Queue):
        self.job_id = job_id
        self.spec = spec
        self.cache_key = cache_key
        #: True when the response came from the result store.
        self.cached = False
        self._future = future
        self._queue = queue

    @property
    def done(self) -> bool:
        return self._future.done()

    async def result(self) -> dict:
        """The job's result dict (raises the job's error, if any)."""
        return await self._future

    async def progress(self):
        """Async-iterate progress records until the job finishes.

        Yields lifecycle events (``submitted``/``cache-hit``/
        ``started``/``finished``) and, for trajectory jobs, the tracer
        span/event/metrics records the engines emit while running.
        """
        while True:
            item = await self._queue.get()
            if item is _DONE:
                return
            yield item


class SimulationService:
    """Async façade over the simulation engines with result caching.

    Parameters
    ----------
    store:
        a result store (``get``/``put``); defaults to an in-process
        :class:`~repro.serve.cache.MemoryResultStore`.
    n_workers:
        process-pool width for jobs that shard (ensemble sweeps,
        robustness campaigns, conformance oracles).  ``None`` lets
        each runner pick its default.  Results are bitwise identical
        at any width -- the determinism contract caching relies on.
    max_threads:
        thread-pool width for concurrently *executing* jobs.
    """

    def __init__(self, store=None, *, n_workers: int | None = None,
                 max_threads: int = 4):
        self.store = store if store is not None else MemoryResultStore()
        self.n_workers = n_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_threads, thread_name_prefix="repro-serve")
        self._job_ids = itertools.count(1)
        self.stats = {"submitted": 0, "cache_hits": 0,
                      "completed": 0, "failed": 0}
        self._closed = False

    # -- submission -----------------------------------------------------------

    async def submit(self, spec: JobSpec) -> JobHandle:
        """Validate, cache-check and (if needed) schedule one job."""
        if self._closed:
            raise ServeError("service is closed")
        spec.validate()
        cache_key = spec.cache_key()
        loop = asyncio.get_running_loop()
        handle = JobHandle(next(self._job_ids), spec, cache_key,
                           loop.create_future(), asyncio.Queue())
        self.stats["submitted"] += 1

        def emit(record: dict) -> None:
            loop.call_soon_threadsafe(handle._queue.put_nowait, record)

        handle._queue.put_nowait(
            {"event": "submitted", "job": handle.job_id,
             "kind": spec.kind, "key": cache_key})
        cached = self.store.get(cache_key)
        if cached is not None:
            handle.cached = True
            self.stats["cache_hits"] += 1
            self.stats["completed"] += 1
            handle._queue.put_nowait(
                {"event": "cache-hit", "job": handle.job_id,
                 "key": cache_key})
            handle._queue.put_nowait(_DONE)
            handle._future.set_result(cached)
            return handle

        handle._queue.put_nowait(
            {"event": "started", "job": handle.job_id})
        task = loop.run_in_executor(
            self._executor, _execute, spec, self.n_workers, emit)

        def finish(done: asyncio.Future) -> None:
            error = done.exception()
            if error is not None:
                self.stats["failed"] += 1
                handle._queue.put_nowait(
                    {"event": "failed", "job": handle.job_id,
                     "error": str(error)})
                handle._queue.put_nowait(_DONE)
                handle._future.set_exception(error)
                return
            result = done.result()
            self.store.put(cache_key, result)
            self.stats["completed"] += 1
            handle._queue.put_nowait(
                {"event": "finished", "job": handle.job_id,
                 "key": cache_key})
            handle._queue.put_nowait(_DONE)
            handle._future.set_result(result)

        task.add_done_callback(finish)
        return handle

    async def run(self, spec: JobSpec) -> dict:
        """Submit one job and await its result."""
        handle = await self.submit(spec)
        return await handle.result()

    # -- lifecycle ------------------------------------------------------------

    async def close(self) -> None:
        """Stop accepting jobs and release the executor."""
        self._closed = True
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "SimulationService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


# -- job execution (worker thread) -------------------------------------------


def _execute(spec: JobSpec, n_workers: int | None, emit) -> dict:
    """Run one job to completion; returns the (pure data) result."""
    if spec.kind == "simulate":
        return _execute_simulate(spec, emit)
    if spec.kind == "sweep":
        return _execute_sweep(spec, n_workers, emit)
    if spec.kind == "robustness":
        return _execute_robustness(spec, n_workers)
    if spec.kind == "conformance":
        return _execute_conformance(spec, n_workers)
    raise ServeError(f"unknown job kind {spec.kind!r}")


def _trajectory_result(kind: str, trajectory) -> dict:
    """Result dict for trajectory jobs: pure data, no timings."""
    return {
        "kind": kind,
        "names": list(trajectory.names),
        "times": np.asarray(trajectory.times, dtype=float),
        "states": np.asarray(trajectory.states, dtype=float),
    }


def _execute_simulate(spec: JobSpec, emit) -> dict:
    from repro import simulate

    network = spec.resolve_network()
    metrics = MetricsRegistry()
    tracer = Tracer(_ProgressSink(emit))
    options = spec.options.replace(seed=spec.seed, tracer=tracer,
                                   metrics=metrics)
    trajectory = simulate(network, spec.t_final, method=spec.method,
                          scheme=spec.scheme, options=options)
    # Telemetry streams to the handle; it never enters the (cached,
    # byte-stable) result.
    tracer.emit_metrics(metrics)
    return _trajectory_result("simulate", trajectory)


def _execute_sweep(spec: JobSpec, n_workers: int | None, emit) -> dict:
    from repro.crn.simulation.ssa import StochasticSimulator
    from repro.crn.simulation.tau_leaping import TauLeapingSimulator

    network = spec.resolve_network()
    opts = spec.options
    if spec.method == "ssa":
        simulator = StochasticSimulator(
            network, scheme=spec.scheme, volume=opts.volume,
            seed=spec.seed)
    else:
        simulator = TauLeapingSimulator(
            network, scheme=spec.scheme, epsilon=opts.epsilon,
            n_critical=opts.n_critical, volume=opts.volume,
            seed=spec.seed)
    run_kwargs: dict = {"t_start": opts.t_start}
    if opts.initial is not None:
        run_kwargs["initial"] = dict(opts.initial)
    if opts.max_events is not None:
        run_kwargs["max_events"] = opts.max_events
    n_samples = opts.n_samples if opts.n_samples is not None else 100
    mean = simulator.mean_trajectory(
        spec.t_final, spec.n_runs, n_samples=n_samples,
        n_workers=n_workers, backend=opts.backend, **run_kwargs)
    emit({"event": "sweep", "n_runs": spec.n_runs,
          "n_workers": n_workers})
    result = _trajectory_result("sweep", mean)
    result["n_runs"] = int(spec.n_runs)
    return result


def _execute_robustness(spec: JobSpec, n_workers: int | None) -> dict:
    from repro.faults.campaign import RobustnessCampaign

    campaign = RobustnessCampaign(
        circuit=spec.circuit, trials=spec.trials, seed=spec.seed,
        separation=spec.separation, n_workers=n_workers,
        circuit_kwargs=dict(spec.circuit_params))
    result = campaign.run().to_dict()
    return {"kind": "robustness", "report": result}


def _execute_conformance(spec: JobSpec, n_workers: int | None) -> dict:
    from repro.conformance.runner import run_conformance

    report = run_conformance(spec.budget, spec.seed,
                             n_workers=n_workers, shrink=False)
    return {"kind": "conformance", "report": report.to_dict()}


__all__ = [
    "JobHandle",
    "SimulationService",
]
