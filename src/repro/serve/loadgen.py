"""Deterministic load generator for the serving layer (E18).

The generator drives a :class:`~repro.serve.service.SimulationService`
with a fixed, seed-derived job mix: ``n_distinct`` distinct specs (ODE
trajectories of random conformance networks plus one small stochastic
sweep), each submitted ``repeats`` times round-robin.  The first pass
over the mix is all cold misses; every later pass is all cache hits --
so one run measures both sides of the content-addressed cache and the
speedup between them, which the E18 benchmark gates.

Wall-clock timings live only in the :class:`LoadReport`, never in job
results: results stay pure data so caching stays byte-stable.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.crn.simulation.options import SimulationOptions
from repro.serve.jobs import JobSpec
from repro.serve.service import SimulationService


def build_job_mix(n_distinct: int = 6, *, seed: int = 0,
                  t_final: float = 1.0, n_samples: int = 50,
                  sweep_runs: int = 4,
                  sweep_t_final: float = 0.2) -> list[JobSpec]:
    """``n_distinct`` distinct specs derived from one root seed.

    The mix is mostly single-trajectory ODE jobs over the conformance
    random-network family (cheap, engine-representative) plus one
    small SSA sweep so the sharded path is exercised too.  ``t_final``
    / ``sweep_runs`` scale the cold-path cost: the E18 benchmark uses
    a heavier mix than the test-suite default.
    """
    if n_distinct < 1:
        raise ValueError("n_distinct must be >= 1")
    specs = []
    options = SimulationOptions(n_samples=n_samples)
    for index in range(n_distinct - 1):
        specs.append(JobSpec(
            kind="simulate", scenario="random",
            scenario_params={"seed": seed + index},
            t_final=t_final, method="ode", options=options,
            seed=seed + index))
    specs.append(JobSpec(
        kind="sweep", scenario="counter", t_final=sweep_t_final,
        method="ssa", options=options, seed=seed, n_runs=sweep_runs))
    return specs[:n_distinct]


@dataclass(frozen=True)
class LoadReport:
    """One load-generation run, summarised."""

    jobs: int
    distinct: int
    cache_hits: int
    elapsed_s: float
    latencies_ms: tuple[float, ...]
    cold_ms: tuple[float, ...]
    hit_ms: tuple[float, ...]

    @property
    def jobs_per_second(self) -> float:
        return self.jobs / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0

    @staticmethod
    def _percentile(values: tuple[float, ...], q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        index = min(len(ordered) - 1,
                    int(round(q * (len(ordered) - 1))))
        return ordered[index]

    @property
    def p50_ms(self) -> float:
        return self._percentile(self.latencies_ms, 0.5)

    @property
    def p99_ms(self) -> float:
        return self._percentile(self.latencies_ms, 0.99)

    @property
    def cold_p50_ms(self) -> float:
        return self._percentile(self.cold_ms, 0.5)

    @property
    def hit_p50_ms(self) -> float:
        return self._percentile(self.hit_ms, 0.5)

    @property
    def hit_speedup(self) -> float:
        """Cold p50 over hit p50 (the cache's latency win)."""
        hit = self.hit_p50_ms
        return self.cold_p50_ms / hit if hit else float("inf")

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "distinct": self.distinct,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "jobs_per_second": self.jobs_per_second,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "cold_p50_ms": self.cold_p50_ms,
            "hit_p50_ms": self.hit_p50_ms,
            "hit_speedup": self.hit_speedup,
        }


async def run_load(service: SimulationService,
                   specs: list[JobSpec], *,
                   repeats: int = 4) -> LoadReport:
    """Submit each spec ``repeats`` times round-robin, timed per job.

    Jobs are awaited one at a time: per-job latency then measures the
    full submit-to-result path without queueing noise, and the
    round-robin order guarantees pass 1 is cold and passes 2..n hit.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    latencies: list[float] = []
    cold: list[float] = []
    hit: list[float] = []
    started = time.perf_counter()
    for _ in range(repeats):
        for spec in specs:
            job_start = time.perf_counter()
            handle = await service.submit(spec)
            await handle.result()
            elapsed_ms = (time.perf_counter() - job_start) * 1e3
            latencies.append(elapsed_ms)
            (hit if handle.cached else cold).append(elapsed_ms)
    elapsed = time.perf_counter() - started
    return LoadReport(
        jobs=len(latencies), distinct=len(specs),
        cache_hits=len(hit), elapsed_s=elapsed,
        latencies_ms=tuple(latencies), cold_ms=tuple(cold),
        hit_ms=tuple(hit))


def generate_load(*, n_distinct: int = 6, repeats: int = 4,
                  seed: int = 0, n_workers: int | None = None,
                  store=None, **mix_kwargs) -> LoadReport:
    """Synchronous entry point: fresh service, full mix, one report.

    ``mix_kwargs`` forward to :func:`build_job_mix` (``t_final``,
    ``n_samples``, ``sweep_runs``, ``sweep_t_final``).
    """
    async def drive() -> LoadReport:
        async with SimulationService(store, n_workers=n_workers) \
                as service:
            specs = build_job_mix(n_distinct, seed=seed, **mix_kwargs)
            return await run_load(service, specs, repeats=repeats)
    return asyncio.run(drive())
