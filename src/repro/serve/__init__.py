"""Simulation-as-a-service: async jobs + content-addressed caching.

Public surface:

- :class:`~repro.serve.jobs.JobSpec` -- the one typed request shape
  (simulate / sweep / robustness / conformance);
- :class:`~repro.serve.service.SimulationService` -- asyncio job
  layer: ``submit() -> JobHandle``, ``await handle.result()``,
  ``async for record in handle.progress()``;
- :class:`~repro.serve.cache.MemoryResultStore` /
  :class:`~repro.serve.cache.DiskResultStore` -- pluggable
  content-addressed result stores;
- :func:`~repro.serve.loadgen.generate_load` -- the deterministic
  load generator behind the E18 benchmark.

See ``docs/serving.md`` for the determinism contract the cache relies
on.
"""

from repro.serve.cache import (DiskResultStore, MemoryResultStore,
                               canonical_result_bytes)
from repro.serve.jobs import JOB_KINDS, KEY_SCHEMA, JobSpec
from repro.serve.loadgen import LoadReport, build_job_mix, generate_load
from repro.serve.service import JobHandle, SimulationService

__all__ = [
    "JOB_KINDS",
    "KEY_SCHEMA",
    "JobSpec",
    "JobHandle",
    "SimulationService",
    "MemoryResultStore",
    "DiskResultStore",
    "canonical_result_bytes",
    "LoadReport",
    "build_job_mix",
    "generate_load",
]
