"""Typed job specifications for the serving layer.

A :class:`JobSpec` is the one request shape every serving entry point
(the async :class:`~repro.serve.service.SimulationService`, the
``python -m repro serve`` CLI, the load generator) accepts.  Four job
kinds cover the toolkit's workloads:

``simulate``
    one trajectory of a network (any engine);
``sweep``
    the bitwise-deterministic ensemble mean over ``n_runs`` stochastic
    realisations, sharded across the worker pool;
``robustness``
    a fault-injection campaign on a registered circuit scenario;
``conformance``
    the cross-engine conformance battery for one ``(budget, seed)``.

Every spec content-addresses itself: :meth:`JobSpec.cache_key` hashes
``(canonical network hash, canonical options dict, seed)`` -- plus the
kind-specific knobs -- so identical requests are cache hits, not
re-simulations.  The key contract is *bitwise*: two specs with equal
keys must produce byte-identical responses.  That is why
:meth:`resolve_network` always returns the network's **canonical form**
(stochastic draw sequences depend on reaction declaration order, so
only canonicalised networks make permutation-equivalent requests
byte-identical) and why live/positional options fields are rejected by
``SimulationOptions.canonical_dict()``.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.simulation.options import ENGINES, SimulationOptions
from repro.errors import ScenarioError, ServeError

#: Job kinds the serving layer accepts.
JOB_KINDS = ("simulate", "sweep", "robustness", "conformance")

#: Version tag of the cache-key layout.  Bump to invalidate every
#: existing content-addressed entry (e.g. when a result field changes
#: meaning).
KEY_SCHEMA = "repro.serve/1"


def _frozen_mapping(value=None) -> Mapping:
    return MappingProxyType(dict(value or {}))


@dataclass(frozen=True)
class JobSpec:
    """One serving request.

    Parameters
    ----------
    kind:
        one of :data:`JOB_KINDS`.
    network / scenario / scenario_params:
        the subject of ``simulate``/``sweep`` jobs: either an explicit
        :class:`~repro.crn.network.Network` or a registered scenario
        name (resolved through :mod:`repro.scenarios`) with builder
        parameters.  Exactly one of ``network``/``scenario``.
    t_final / method / scheme / options:
        forwarded to :func:`repro.simulate`; ``options.seed``,
        ``options.tracer`` and ``options.metrics`` must stay ``None``
        (the seed is a top-level job field, telemetry is injected by
        the service).
    seed:
        the job's root seed (spawned per shard for ``sweep``).
    n_runs:
        ensemble size for ``sweep`` jobs.
    circuit / circuit_params / trials / separation:
        fault-campaign knobs for ``robustness`` jobs (``circuit`` is a
        scenario name tagged ``faults``).
    budget:
        conformance budget name for ``conformance`` jobs.
    """

    kind: str
    network: Network | None = None
    scenario: str | None = None
    scenario_params: Mapping = field(default_factory=_frozen_mapping)
    t_final: float = 1.0
    method: str = "ode"
    scheme: RateScheme | None = None
    options: SimulationOptions = field(
        default_factory=SimulationOptions)
    seed: int = 0
    n_runs: int = 16
    circuit: str = "counter"
    circuit_params: Mapping = field(default_factory=_frozen_mapping)
    trials: int = 8
    separation: float | None = None
    budget: str = "tiny"

    def __post_init__(self):
        object.__setattr__(self, "scenario_params",
                           _frozen_mapping(self.scenario_params))
        object.__setattr__(self, "circuit_params",
                           _frozen_mapping(self.circuit_params))

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Reject malformed specs before any work is scheduled."""
        if self.kind not in JOB_KINDS:
            raise ServeError(f"unknown job kind {self.kind!r}; "
                             f"expected one of {JOB_KINDS}")
        if self.kind in ("simulate", "sweep"):
            if (self.network is None) == (self.scenario is None):
                raise ServeError(
                    f"{self.kind} jobs take exactly one of network= "
                    f"or scenario=")
            if self.t_final <= 0:
                raise ServeError("t_final must be positive")
            if self.method not in ENGINES:
                raise ServeError(
                    f"unknown method {self.method!r}; expected one of "
                    f"{ENGINES}")
            for name in ("seed", "tracer", "metrics"):
                if getattr(self.options, name) is not None:
                    raise ServeError(
                        f"options.{name} must be None in a job spec: "
                        f"the seed is the top-level JobSpec.seed and "
                        f"telemetry is injected by the service")
            # Fail at submit time, not deep in a worker thread.
            self.options.canonical_dict()
        if self.kind == "sweep":
            if self.method == "ode":
                raise ServeError(
                    "sweep jobs average stochastic realisations; "
                    "method must be 'ssa' or 'tau' (an ODE ensemble "
                    "is one deterministic run)")
            if self.n_runs < 1:
                raise ServeError("n_runs must be >= 1")
        if self.kind == "robustness":
            from repro.scenarios import get_scenario, scenario_names

            try:
                if get_scenario(self.circuit).make_circuit is None:
                    raise ScenarioError(self.circuit)
            except ScenarioError:
                raise ServeError(
                    f"unknown robustness circuit {self.circuit!r}; "
                    f"choose from {sorted(scenario_names(tag='faults'))}"
                ) from None
            if self.trials < 1:
                raise ServeError("trials must be >= 1")
        if self.kind == "conformance":
            from repro.conformance.generator import BUDGETS

            if self.budget not in BUDGETS:
                raise ServeError(
                    f"unknown conformance budget {self.budget!r}; "
                    f"choose from {sorted(BUDGETS)}")

    # -- resolution -----------------------------------------------------------

    def resolve_network(self) -> Network:
        """The job's network, always in canonical form.

        Canonicalising before simulation is what makes the cache key
        sound for stochastic engines: the SSA draw sequence depends on
        reaction declaration order, so permutation-equivalent requests
        only produce byte-identical realisations when both simulate
        the canonical representative.  Responses are therefore always
        in canonical (sorted) species order.
        """
        if self.network is not None:
            return self.network.canonical_form()
        from repro.scenarios import get_scenario

        try:
            scenario = get_scenario(self.scenario)
            network = scenario.network(**dict(self.scenario_params))
        except ScenarioError as exc:
            raise ServeError(str(exc)) from None
        return network.canonical_form()

    def _scheme_payload(self):
        if self.scheme is None:
            return None
        return {name: float(value)
                for name, value in sorted(self.scheme.values.items())}

    # -- content addressing ---------------------------------------------------

    def key_payload(self) -> dict:
        """The JSON-safe dict :meth:`cache_key` hashes."""
        payload: dict = {"schema": KEY_SCHEMA, "kind": self.kind}
        if self.kind in ("simulate", "sweep"):
            payload.update({
                "network": self.resolve_network().canonical_hash(),
                "t_final": float(self.t_final),
                "method": self.method,
                "scheme": self._scheme_payload(),
                "options": self.options.canonical_dict(),
                "seed": int(self.seed),
            })
        if self.kind == "sweep":
            payload["n_runs"] = int(self.n_runs)
        if self.kind == "robustness":
            payload.update({
                "circuit": self.circuit,
                "circuit_params": dict(sorted(
                    self.circuit_params.items())),
                "trials": int(self.trials),
                "separation": self.separation,
                "seed": int(self.seed),
            })
        if self.kind == "conformance":
            payload.update({"budget": self.budget,
                            "seed": int(self.seed)})
        return payload

    def cache_key(self) -> str:
        """SHA-256 content address of this request.

        Equal keys promise byte-identical responses; any delta in the
        chemistry, options, seed or kind-specific knobs moves the key.
        The key is memoised on the (frozen, hence immutable) spec, so
        repeat submissions skip re-canonicalising the network.
        """
        cached = self.__dict__.get("_cache_key")
        if cached is not None:
            return cached
        text = json.dumps(self.key_payload(), sort_keys=True,
                          separators=(",", ":"))
        key = hashlib.sha256(text.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_cache_key", key)
        return key

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form for job files (``repro serve --jobs``)."""
        payload: dict = {"kind": self.kind}
        if self.network is not None:
            payload["network"] = self.network.to_canonical_dict()
        if self.scenario is not None:
            payload["scenario"] = self.scenario
        if self.scenario_params:
            payload["scenario_params"] = dict(self.scenario_params)
        if self.kind in ("simulate", "sweep"):
            payload.update({"t_final": float(self.t_final),
                            "method": self.method,
                            "seed": int(self.seed)})
            if self.scheme is not None:
                payload["scheme"] = self._scheme_payload()
            options = self.options.canonical_dict()
            options.pop("schema")
            if options:
                payload["options"] = options
        if self.kind == "sweep":
            payload["n_runs"] = int(self.n_runs)
        if self.kind == "robustness":
            payload.update({"circuit": self.circuit,
                            "trials": int(self.trials),
                            "seed": int(self.seed)})
            if self.circuit_params:
                payload["circuit_params"] = dict(self.circuit_params)
            if self.separation is not None:
                payload["separation"] = float(self.separation)
        if self.kind == "conformance":
            payload.update({"budget": self.budget,
                            "seed": int(self.seed)})
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output (job files)."""
        if not isinstance(payload, Mapping):
            raise ServeError(
                f"job spec must be a mapping, got "
                f"{type(payload).__name__}")
        known = {"kind", "network", "scenario", "scenario_params",
                 "t_final", "method", "scheme", "options", "seed",
                 "n_runs", "circuit", "circuit_params", "trials",
                 "separation", "budget"}
        extra = set(payload) - known
        if extra:
            raise ServeError(
                f"unknown job spec field(s) {sorted(extra)}")
        kwargs = dict(payload)
        if "network" in kwargs:
            kwargs["network"] = Network.from_canonical_dict(
                kwargs["network"])
        if "scheme" in kwargs and kwargs["scheme"] is not None:
            kwargs["scheme"] = RateScheme(dict(kwargs["scheme"]))
        if "options" in kwargs:
            options = dict(kwargs["options"])
            options.pop("schema", None)
            kwargs["options"] = SimulationOptions().replace(**options)
        spec = cls(**kwargs)
        spec.validate()
        return spec
