"""CRN -> DNA-strand-displacement compilation (Soloveichik et al. 2010).

Every formal reaction of the source network is replaced by a cascade of
at most three *implementable* bimolecular strand-displacement steps fed by
fuel complexes held at a large buffer concentration ``C_max``:

zeroth order (``0 ->k P...``)
    a source complex slowly falls apart::

        Src_j ->(k / C_max) Src_j + products'   (fuel modelled catalytic,
                                                 depletion tracked separately)

unimolecular (``A ->k P...``)
    ::

        A + G_j ->(k / C_max) O_j               effective rate k while
        O_j + T_j ->(k_max)   products + W_j    [G_j] ~ C_max

bimolecular (``A + B ->k P...``)
    ::

        A + L_j  <->(k, k_max) H_j + Bw_j
        H_j + B  ->(k_max)     O_j
        O_j + T_j ->(k_max)    products + W_j

trimolecular (``A + B + C ->k ...``, used by some digital gates)
    decomposed first through a fast reversible pairing
    ``A + B <->(k_max, k_max) AB_j`` followed by the bimolecular rule on
    ``AB_j + C``.

The compiled result is an ordinary :class:`~repro.crn.network.Network`
(simulable by every engine in :mod:`repro.crn.simulation`) in which the
formal species keep their names, plus a :class:`DsdCompilation` record
carrying the fuel bookkeeping and the domain-level
:class:`~repro.dsd.structures.StructureInventory`.

Fidelity is exact in the limit ``C_max -> inf``; at finite ``C_max`` the
deviation is O(k / (k_max * C_max)) per step plus fuel-depletion effects,
which ``bench_dsd`` measures across a ``C_max`` sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field



from repro.crn.network import Network
from repro.crn.rates import RateScheme
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.dsd.structures import (Complex, StructureInventory, recognition,
                                  toehold)
from repro.errors import NetworkError

#: Default buffer concentration for fuel complexes.
DEFAULT_C_MAX = 10_000.0

#: Default cap on implementable bimolecular rates (the physical
#: strand-displacement rate limit).
DEFAULT_K_MAX = 1_000.0


@dataclass
class DsdCompilation:
    """Result of compiling a formal network to a DSD implementation."""

    source: Network
    network: Network
    c_max: float
    k_max: float
    fuel_species: list[str] = field(default_factory=list)
    inventory: StructureInventory = field(default_factory=StructureInventory)

    @property
    def expansion_factor(self) -> float:
        """Reactions in the implementation per formal reaction."""
        return self.network.n_reactions / max(self.source.n_reactions, 1)

    def fuel_depletion(self, trajectory) -> float:
        """Worst fractional fuel consumption along a trajectory."""
        worst = 0.0
        for name in self.fuel_species:
            series = trajectory.column(name)
            worst = max(worst, 1.0 - float(series.min()) / self.c_max)
        return worst

    def summary(self) -> str:
        return (f"{self.source.summary()}  =>  {self.network.summary()}  "
                f"[{self.inventory.summary()}]")


class DsdCompiler:
    """Compiles formal networks reaction by reaction."""

    def __init__(self, c_max: float = DEFAULT_C_MAX,
                 k_max: float = DEFAULT_K_MAX,
                 scheme: RateScheme | None = None):
        if c_max <= 0 or k_max <= 0:
            raise NetworkError("c_max and k_max must be positive")
        self.c_max = c_max
        self.k_max = k_max
        self.scheme = scheme or RateScheme()

    def compile(self, source: Network) -> DsdCompilation:
        source.validate()
        target = Network(f"{source.name}_dsd")
        result = DsdCompilation(source=source, network=target,
                                c_max=self.c_max, k_max=self.k_max)
        for species in source.species:
            target.add_species(species)
            result.inventory.signal_strand_for(species.name)
        for name, value in source.initial.items():
            target.set_initial(name, value)
        for index, reaction in enumerate(source.reactions):
            self._compile_reaction(result, index, reaction)
        return result

    # -- per-reaction rules ----------------------------------------------------------

    def _compile_reaction(self, result: DsdCompilation, index: int,
                          reaction: Reaction) -> None:
        rate = self.scheme.resolve(reaction.rate)
        reactants: list[Species] = []
        for species, coeff in reaction.reactants.items():
            reactants.extend([species] * coeff)
        products = dict(reaction.products)
        tag = f"r{index}"
        if len(reactants) == 0:
            self._compile_source(result, tag, rate, products)
        elif len(reactants) == 1:
            self._compile_unimolecular(result, tag, rate, reactants[0],
                                       products)
        elif len(reactants) == 2:
            self._compile_bimolecular(result, tag, rate, reactants[0],
                                      reactants[1], products)
        elif len(reactants) == 3:
            self._compile_trimolecular(result, tag, rate, reactants,
                                       products)
        else:
            raise NetworkError(
                f"cannot compile reaction of order {len(reactants)}: "
                f"{reaction}")

    def _fuel(self, result: DsdCompilation, name: str) -> Species:
        species = result.network.add_species(Species(name, role="aux"))
        result.network.set_initial(species, self.c_max)
        result.fuel_species.append(species.name)
        return species

    def _aux(self, result: DsdCompilation, name: str) -> Species:
        return result.network.add_species(Species(name, role="aux"))

    def _compile_source(self, result: DsdCompilation, tag: str,
                        rate: float, products: dict) -> None:
        """A source complex falls apart at rate k/C_max, so the emission
        flux starts at exactly ``k`` and decays as the finite fuel is
        consumed -- the realistic behaviour of a DNA implementation."""
        fuel = self._fuel(result, f"Src_{tag}")
        waste = self._aux(result, f"W_{tag}")
        emitted = dict(products)
        emitted[waste] = emitted.get(waste, 0) + 1
        result.network.add_reaction(Reaction(
            {fuel: 1}, emitted, rate / self.c_max,
            label=f"{tag} source"))
        self._register_gate(result, f"Src_{tag}", list(products))

    def _compile_unimolecular(self, result: DsdCompilation, tag: str,
                              rate: float, reactant: Species,
                              products: dict) -> None:
        gate = self._fuel(result, f"G_{tag}")
        out = self._aux(result, f"O_{tag}")
        translator = self._fuel(result, f"T_{tag}")
        waste = self._aux(result, f"W_{tag}")
        result.network.add_reaction(Reaction(
            {reactant: 1, gate: 1}, {out: 1}, rate / self.c_max,
            label=f"{tag} displace"))
        final = dict(products)
        final[waste] = final.get(waste, 0) + 1
        result.network.add_reaction(Reaction(
            {out: 1, translator: 1}, final, self.k_max,
            label=f"{tag} translate"))
        self._register_gate(result, f"G_{tag}", [reactant]
                            + list(products))

    def _compile_bimolecular(self, result: DsdCompilation, tag: str,
                             rate: float, first: Species, second: Species,
                             products: dict) -> None:
        """Emulate ``A + B ->k ...`` through a half-reacted intermediate.

        ::

            A + L ->(k * C_ref / C_max)  H        (L buffered at C_max)
            H     ->(k_max * C_ref)      A + L    (fast dissociation,
                                                   fuel recycled)
            H + B ->(k_max)              O
            O + T ->(k_max)              products + W

        At quasi-steady state the net flux is
        ``k [A][B] / (1 + [B]/C_ref)`` with ``C_ref = 0.1 C_max``: the
        deviation is first order in signal/buffer concentration ratio and
        vanishes as C_max grows, matching the construction's exactness in
        the buffered limit.
        """
        c_ref = 0.1 * self.c_max
        link = self._fuel(result, f"L_{tag}")
        half = self._aux(result, f"H_{tag}")
        out = self._aux(result, f"O_{tag}")
        translator = self._fuel(result, f"T_{tag}")
        waste = self._aux(result, f"W_{tag}")
        # H production flux must equal k [A] C_ref (so that the fast
        # steps H -> back (k_max C_ref) and H + B -> O (k_max) partition
        # it into a net k [A][B] / (1 + [B]/C_ref)); with [L] = C_max the
        # rate constant is k C_ref / C_max.
        result.network.add_reaction(Reaction(
            {first: 1, link: 1}, {half: 1}, rate * c_ref / self.c_max,
            label=f"{tag} bind 1"))
        result.network.add_reaction(Reaction(
            {half: 1}, {first: 1, link: 1}, self.k_max * c_ref,
            label=f"{tag} unbind 1"))
        result.network.add_reaction(Reaction(
            {half: 1, second: 1}, {out: 1}, self.k_max,
            label=f"{tag} bind 2"))
        final = dict(products)
        final[waste] = final.get(waste, 0) + 1
        result.network.add_reaction(Reaction(
            {out: 1, translator: 1}, final, self.k_max,
            label=f"{tag} translate"))
        self._register_gate(result, f"L_{tag}", [first, second]
                            + list(products))

    def _compile_trimolecular(self, result: DsdCompilation, tag: str,
                              rate: float, reactants: list[Species],
                              products: dict) -> None:
        pair = self._aux(result, f"P_{tag}")
        # Weak pre-pairing (K_eq = 1/C_max) keeps the sequestered mass
        # negligible: [pair] = [A][B]/C_max.  The bimolecular stage is
        # driven C_max times harder to compensate, so the net flux is
        # rate * [A][B][C].
        result.network.add_reaction(Reaction(
            {reactants[0]: 1, reactants[1]: 1}, {pair: 1},
            self.k_max, label=f"{tag} pre-pair"))
        result.network.add_reaction(Reaction(
            {pair: 1}, {reactants[0]: 1, reactants[1]: 1},
            self.k_max * self.c_max, label=f"{tag} pre-unpair"))
        self._compile_bimolecular(result, f"{tag}c", rate * self.c_max,
                                  pair, reactants[2], products)

    # -- structural registration --------------------------------------------------------

    def _register_gate(self, result: DsdCompilation, name: str,
                       around: list) -> None:
        """Record a plausible domain-level gate complex for the rule."""
        inventory = result.inventory
        names = [getattr(s, "name", str(s)) for s in around]
        top_domains = []
        bottom_domains = []
        for species_name in names[:3]:
            strand = inventory.signal_strand_for(species_name)
            top_domains.extend(strand.domains[1:])
            bottom_domains.extend(d.complement for d in strand.domains[1:])
        if not top_domains:
            top_domains = [toehold(f"t_{name}"), recognition(f"x_{name}")]
            bottom_domains = [d.complement for d in top_domains]
        complex_ = Complex(
            name=name,
            strands=(
                # Backbone strand carries the complements; the incumbent
                # strand is displaced by the incoming signal.
                _strand(f"{name}_bottom", tuple(bottom_domains)),
                _strand(f"{name}_incumbent", tuple(top_domains)),
            ),
            bound=tuple(
                ((1, i), (0, i)) for i in range(len(top_domains))),
        )
        inventory.add_complex(complex_)


def _strand(name, domains):
    from repro.dsd.structures import Strand

    return Strand(name=name, domains=tuple(domains))


def compile_network(network: Network, c_max: float = DEFAULT_C_MAX,
                    k_max: float = DEFAULT_K_MAX,
                    scheme: RateScheme | None = None) -> DsdCompilation:
    """One-shot convenience wrapper."""
    return DsdCompiler(c_max=c_max, k_max=k_max, scheme=scheme).compile(
        network)
