"""DNA strand displacement compilation -- the experimental chassis."""

from repro.dsd.compiler import (DEFAULT_C_MAX, DEFAULT_K_MAX, DsdCompilation,
                                DsdCompiler, compile_network)
from repro.dsd.sequences import (SequenceDesigner, gc_fraction,
                                 reverse_complement, validate_assignment)
from repro.dsd.structures import (Complex, Domain, Strand,
                                  StructureInventory, recognition, toehold)

__all__ = [
    "Complex",
    "DEFAULT_C_MAX",
    "DEFAULT_K_MAX",
    "Domain",
    "DsdCompilation",
    "DsdCompiler",
    "SequenceDesigner",
    "Strand",
    "StructureInventory",
    "compile_network",
    "gc_fraction",
    "recognition",
    "reverse_complement",
    "toehold",
    "validate_assignment",
]
