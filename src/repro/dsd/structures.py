"""Domain-level DNA strand displacement structures.

The paper names DNA strand displacement as its experimental chassis,
citing the Soloveichik-Seelig-Winfree construction ("DNA as a universal
substrate for chemical kinetics", PNAS 2010): any formal CRN can be
emulated by synthesized DNA strands, with each formal species mapped to a
*signal strand* and each reaction to a small set of fuel complexes.

This module models the structural side at the domain level -- enough to
enumerate every strand and complex a wet-lab realisation would need, to
check complementarity bookkeeping, and to estimate synthesis cost
(distinct strands, total nucleotides).  Sequence design proper (assigning
concrete A/C/G/T) is out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetworkError

#: Default domain lengths (nucleotides), following common DSD practice.
TOEHOLD_LENGTH = 6
RECOGNITION_LENGTH = 15


@dataclass(frozen=True)
class Domain:
    """A named DNA domain or its complement.

    The complement of ``d`` is written ``~d``; complementing twice yields
    the original.
    """

    name: str
    length: int
    is_toehold: bool = False
    complemented: bool = False

    def __post_init__(self):
        if self.length < 1:
            raise NetworkError("domain length must be positive")

    @property
    def complement(self) -> "Domain":
        return Domain(self.name, self.length, self.is_toehold,
                      not self.complemented)

    def is_complement_of(self, other: "Domain") -> bool:
        return (self.name == other.name and self.length == other.length
                and self.complemented != other.complemented)

    def __str__(self) -> str:
        return ("~" if self.complemented else "") + self.name


def toehold(name: str) -> Domain:
    return Domain(name, TOEHOLD_LENGTH, is_toehold=True)


def recognition(name: str) -> Domain:
    return Domain(name, RECOGNITION_LENGTH, is_toehold=False)


@dataclass(frozen=True)
class Strand:
    """A single DNA strand: an ordered 5'->3' run of domains."""

    name: str
    domains: tuple[Domain, ...]

    def __post_init__(self):
        if not self.domains:
            raise NetworkError("strand needs at least one domain")

    @property
    def length(self) -> int:
        return sum(d.length for d in self.domains)

    def __str__(self) -> str:
        body = "-".join(str(d) for d in self.domains)
        return f"{self.name}: 5'-{body}-3'"


@dataclass(frozen=True)
class Complex:
    """A multi-strand fuel complex (gate), listed by its strands.

    ``bound`` records which domain pairs are hybridised, as index pairs
    ((strand_index, domain_index), (strand_index, domain_index)).
    """

    name: str
    strands: tuple[Strand, ...]
    bound: tuple[tuple[tuple[int, int], tuple[int, int]], ...] = ()

    def validate(self) -> None:
        for (si, di), (sj, dj) in self.bound:
            try:
                a = self.strands[si].domains[di]
                b = self.strands[sj].domains[dj]
            except IndexError:
                raise NetworkError(f"complex {self.name}: bad bond index") from None
            if not a.is_complement_of(b):
                raise NetworkError(
                    f"complex {self.name}: domains {a} and {b} are not "
                    f"complementary")

    @property
    def total_nucleotides(self) -> int:
        return sum(s.length for s in self.strands)


@dataclass
class StructureInventory:
    """Everything a wet-lab realisation must synthesize."""

    signal_strands: dict[str, Strand] = field(default_factory=dict)
    fuel_complexes: list[Complex] = field(default_factory=list)

    def signal_strand_for(self, species_name: str) -> Strand:
        """The canonical signal strand of a formal species:
        ``5'-history-toehold-identity-3'``."""
        if species_name not in self.signal_strands:
            strand = Strand(
                name=f"sig_{species_name}",
                domains=(recognition(f"h_{species_name}"),
                         toehold(f"t_{species_name}"),
                         recognition(f"x_{species_name}")))
            self.signal_strands[species_name] = strand
        return self.signal_strands[species_name]

    def add_complex(self, complex_: Complex) -> Complex:
        complex_.validate()
        self.fuel_complexes.append(complex_)
        return complex_

    @property
    def n_distinct_strands(self) -> int:
        names = {s.name for s in self.signal_strands.values()}
        for complex_ in self.fuel_complexes:
            names.update(s.name for s in complex_.strands)
        return len(names)

    @property
    def total_nucleotides(self) -> int:
        total = sum(s.length for s in self.signal_strands.values())
        total += sum(c.total_nucleotides for c in self.fuel_complexes)
        return total

    def summary(self) -> str:
        return (f"{len(self.signal_strands)} signal strands, "
                f"{len(self.fuel_complexes)} fuel complexes, "
                f"{self.n_distinct_strands} distinct strands, "
                f"{self.total_nucleotides} nt")
