"""Concrete nucleotide sequence assignment for DSD structures.

Turns the domain-level inventory of a compilation into actual A/C/G/T
sequences ready for an order sheet:

- each domain gets a fresh sequence; its complement is the reverse
  complement (Watson-Crick);
- three-letter code option (no G on signal strands -- a standard DSD
  design trick that suppresses unwanted secondary structure);
- constraints enforced per domain: GC fraction within bounds, no
  homopolymer runs beyond a limit, and pairwise Hamming separation
  between distinct domains of the same length.

This is deliberately a *lightweight* designer (constraint checking +
rejection sampling), not a thermodynamic optimiser; it exists so the
wet-lab interface of the reproduction is complete end to end, down to
FASTA output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsd.structures import Domain, Strand, StructureInventory
from repro.errors import NetworkError

_COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C"}


def reverse_complement(sequence: str) -> str:
    return "".join(_COMPLEMENT[base] for base in reversed(sequence))


def gc_fraction(sequence: str) -> float:
    if not sequence:
        return 0.0
    return sum(1 for base in sequence if base in "GC") / len(sequence)


def longest_run(sequence: str) -> int:
    best = run = 1
    for a, b in zip(sequence, sequence[1:]):
        run = run + 1 if a == b else 1
        best = max(best, run)
    return best


def hamming(a: str, b: str) -> int:
    if len(a) != len(b):
        raise NetworkError("hamming distance needs equal lengths")
    return sum(1 for x, y in zip(a, b) if x != y)


@dataclass
class SequenceDesigner:
    """Rejection-sampling sequence assignment with per-domain checks."""

    seed: int = 0
    alphabet: str = "ACT"          # three-letter code by default
    gc_bounds: tuple[float, float] = (0.0, 0.7)
    max_run: int = 4
    min_separation_fraction: float = 0.3
    max_attempts: int = 2000
    _assigned: dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    def sequence_for(self, domain: Domain) -> str:
        """The sequence of a domain (complements derived, cached)."""
        if domain.complemented:
            return reverse_complement(self.sequence_for(domain.complement))
        key = f"{domain.name}:{domain.length}"
        if key not in self._assigned:
            self._assigned[key] = self._fresh(domain.length)
        return self._assigned[key]

    def _fresh(self, length: int) -> str:
        peers = [s for s in self._assigned.values() if len(s) == length]
        min_distance = int(np.ceil(self.min_separation_fraction * length))
        letters = list(self.alphabet)
        for _ in range(self.max_attempts):
            candidate = "".join(self._rng.choice(letters)
                                for _ in range(length))
            low, high = self.gc_bounds
            if not low <= gc_fraction(candidate) <= high:
                continue
            if longest_run(candidate) > self.max_run:
                continue
            if any(hamming(candidate, peer) < min_distance
                   for peer in peers):
                continue
            return candidate
        raise NetworkError(
            f"could not place a length-{length} domain within "
            f"{self.max_attempts} attempts; relax the constraints")

    # -- strand/inventory level --------------------------------------------------

    def strand_sequence(self, strand: Strand) -> str:
        return "".join(self.sequence_for(d) for d in strand.domains)

    def assign(self, inventory: StructureInventory) -> dict[str, str]:
        """Sequences for every strand in an inventory, keyed by name."""
        sequences: dict[str, str] = {}
        for strand in inventory.signal_strands.values():
            sequences[strand.name] = self.strand_sequence(strand)
        for complex_ in inventory.fuel_complexes:
            for strand in complex_.strands:
                sequences.setdefault(strand.name,
                                     self.strand_sequence(strand))
        return sequences

    def to_fasta(self, inventory: StructureInventory) -> str:
        """FASTA order sheet for the whole inventory."""
        sequences = self.assign(inventory)
        lines = []
        for name in sorted(sequences):
            lines.append(f">{name}")
            sequence = sequences[name]
            for start in range(0, len(sequence), 60):
                lines.append(sequence[start:start + 60])
        return "\n".join(lines) + "\n"


def validate_assignment(designer: SequenceDesigner,
                        inventory: StructureInventory) -> None:
    """Check Watson-Crick consistency of every recorded bond."""
    for complex_ in inventory.fuel_complexes:
        for (si, di), (sj, dj) in complex_.bound:
            a = complex_.strands[si].domains[di]
            b = complex_.strands[sj].domains[dj]
            if designer.sequence_for(a) != reverse_complement(
                    designer.sequence_for(b)):
                raise NetworkError(
                    f"complex {complex_.name}: bound domains {a} / {b} "
                    f"are not reverse complements")
