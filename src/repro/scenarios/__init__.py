"""One scenario registry for benchmarks, faults, waves, conformance
and serving.

>>> from repro.scenarios import get_scenario
>>> network = get_scenario("counter").network(bits=3)

See :mod:`repro.scenarios.registry` for the design rationale and
:mod:`repro.scenarios.builtin` for the built-in menu (clock, counter,
fsm, ma, iir, random).
"""

from __future__ import annotations

from repro.scenarios.registry import (Scenario, get_scenario,
                                      register_scenario, scenario_names)

# Importing the package registers the built-in menu.
import repro.scenarios.builtin  # noqa: E402,F401  (registration side effect)

__all__ = [
    "Scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
]
