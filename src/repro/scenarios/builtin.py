"""Built-in scenarios: the circuits the paper's claims ride on.

Each builder imports its circuit machinery lazily so that importing
:mod:`repro.scenarios` stays cheap and cycle-free (the fault adapters
live in :mod:`repro.faults.circuits`, which resolves names back through
this registry).

The probed runners are byte-for-byte the bodies that used to live in
``repro.waves.runner`` -- the waves golden-VCD CI diff pins their
behaviour, so they moved here unchanged.  Likewise the ``clock`` and
``counter`` conformance recipes reproduce the exact targets the old
``conformance.generator._circuit_targets`` built.
"""

from __future__ import annotations

from repro.errors import ScenarioError
from repro.scenarios.registry import Scenario, register_scenario


# -- network builders ---------------------------------------------------------


def _clock_network(mass: float = 20.0, gating: str = "catalytic",
                   acceleration: str | None = None,
                   oscillator: str = "molecular"):
    from repro.core.clock import build_clock

    network, _, _ = build_clock(mass=mass, gating=gating,
                                acceleration=acceleration,
                                oscillator=oscillator)
    return network


def _counter_network(bits: int = 2, pulse: float = 1.0):
    from repro.digital.counter import BinaryCounter

    counter = BinaryCounter(int(bits))
    network = counter.network.copy()
    network.set_initial(counter.input_pulse, float(pulse))
    return network


def _ma_network(taps: int = 2):
    from repro.apps.filters import moving_average
    from repro.core.machine import SynchronousMachine

    return SynchronousMachine(moving_average(int(taps))).network


def _iir_network():
    from repro.apps.filters import iir_first_order
    from repro.core.machine import SynchronousMachine

    return SynchronousMachine(iir_first_order()).network


def _random_network(seed: int = 0, max_species: int = 5,
                    max_reactions: int = 6, name: str = "conf"):
    from repro.conformance.generator import random_network

    return random_network(int(seed), max_species=int(max_species),
                          max_reactions=int(max_reactions), name=name)


# -- interactive drivers ------------------------------------------------------


def _clock_driver(mass: float = 20.0, gating: str = "catalytic",
                  acceleration: str | None = None,
                  oscillator: str = "molecular"):
    """The ``(network, Clock, PhaseProtocol)`` builder trio."""
    from repro.core.clock import build_clock

    return build_clock(mass=mass, gating=gating,
                       acceleration=acceleration,
                       oscillator=oscillator)


def _relaxation_clock_network(mass: float = 20.0,
                              gating: str = "catalytic"):
    return _clock_network(mass=mass, gating=gating,
                          oscillator="relaxation")


def _relaxation_clock_driver(mass: float = 20.0,
                             gating: str = "catalytic"):
    return _clock_driver(mass=mass, gating=gating,
                         oscillator="relaxation")


def _counter_driver(bits: int = 2):
    from repro.digital.counter import BinaryCounter

    return BinaryCounter(int(bits))


def _ma_driver(taps: int = 2, **machine_kwargs):
    from repro.apps.filters import moving_average
    from repro.core.machine import SynchronousMachine

    return SynchronousMachine(moving_average(int(taps)),
                              **machine_kwargs)


def _iir_driver(**machine_kwargs):
    from repro.apps.filters import iir_first_order
    from repro.core.machine import SynchronousMachine

    return SynchronousMachine(iir_first_order(), **machine_kwargs)


# -- fault-campaign adapters --------------------------------------------------


def _counter_circuit(**kwargs):
    from repro.faults.circuits import CounterCircuit

    return CounterCircuit(**kwargs)


def _ma_circuit(**kwargs):
    from repro.faults.circuits import _make_ma

    return _make_ma(**kwargs)


def _iir_circuit(**kwargs):
    from repro.faults.circuits import _make_iir

    return _make_iir(**kwargs)


# -- probed (waves) runners ---------------------------------------------------


def _probed_counter(probe, *, seed=0, bits=2, pulses=None, **_) -> dict:
    from repro.digital import BinaryCounter

    counter = BinaryCounter(bits)
    n_pulses = pulses if pulses is not None else 2 ** bits + 2
    run = counter.count(n_pulses, seed=seed, probe=probe)
    return {"values": list(run.values), "overflow": run.overflow,
            "settled": all(run.settled)}


def _probed_fsm(probe, *, seed=0, machine="parity", pattern="101",
                word="110101", **_) -> dict:
    from repro.digital.fsm import parity_machine, sequence_detector

    if machine == "parity":
        fsm = parity_machine()
    elif machine == "detector":
        fsm = sequence_detector(pattern)
    else:
        raise ScenarioError(f"unknown FSM {machine!r}; expected "
                            f"'parity' or 'detector'")
    run = fsm.run(list(word), seed=seed, probe=probe)
    return {"trace": list(run.trace),
            "outputs": {name: counts[-1] for name, counts
                        in run.output_counts.items()}}


def _probed_machine(design_builder):
    def run(probe, *, monitor=None, input_samples=None,
            clocking="fixed", oscillator="molecular", **_) -> dict:
        from repro.core.machine import MachineOptions, SynchronousMachine

        samples = list(input_samples) if input_samples is not None \
            else [8.0, 4.0, 6.0, 2.0]
        machine = SynchronousMachine(
            design_builder(), monitor=monitor, probe=probe,
            options=MachineOptions(clocking=clocking,
                                   oscillator=oscillator))
        run = machine.run({"x": samples})
        return {"outputs": [float(v) for v in run.outputs["y"]],
                "reference": [float(v) for v in run.reference["y"]],
                "max_error": run.max_error(),
                "n_cycles": run.n_cycles,
                "monitor_diagnostics": [
                    d.format() for d in run.diagnostics
                    if not d.code.startswith("REPRO-A")]}
    return run


def _probed_ma(probe, *, monitor=None, taps=2, input_samples=None,
               clocking="fixed", oscillator="molecular", **_) -> dict:
    from repro.apps import moving_average

    return _probed_machine(lambda: moving_average(taps))(
        probe, monitor=monitor, input_samples=input_samples,
        clocking=clocking, oscillator=oscillator)


def _probed_iir(probe, *, monitor=None, input_samples=None,
                clocking="fixed", oscillator="molecular", **_) -> dict:
    from repro.apps import iir_first_order

    return _probed_machine(iir_first_order)(
        probe, monitor=monitor, input_samples=input_samples,
        clocking=clocking, oscillator=oscillator)


# -- registration -------------------------------------------------------------
# Order is meaningful: CLI choice lists and the conformance target list
# follow registration order.

register_scenario(Scenario(
    name="clock",
    description="three-phase RGB molecular clock (paper fig. E1)",
    tags=frozenset({"network", "conformance-circuit"}),
    build_network=_clock_network,
    build_driver=_clock_driver,
    conformance={"target": "circuit:clock", "t_final_cap": 2.0,
                 "stochastic": False, "stiff": True, "params": {}},
))

register_scenario(Scenario(
    name="counter",
    description="n-bit dual-rail ripple counter (paper fig. E5)",
    tags=frozenset({"network", "waves", "faults",
                    "conformance-circuit"}),
    build_network=_counter_network,
    build_driver=_counter_driver,
    make_circuit=_counter_circuit,
    run_probed=_probed_counter,
    conformance={"target": "circuit:counter2", "t_final_cap": 1.0,
                 "stochastic": True, "stiff": True,
                 "params": {"bits": 2}},
))

register_scenario(Scenario(
    name="fsm",
    description="finite-state machine (parity / sequence detector)",
    tags=frozenset({"waves"}),
    run_probed=_probed_fsm,
))

register_scenario(Scenario(
    name="ma",
    description="two-tap moving-average filter machine (paper fig. E3)",
    tags=frozenset({"network", "waves", "faults"}),
    build_network=_ma_network,
    build_driver=_ma_driver,
    make_circuit=_ma_circuit,
    run_probed=_probed_ma,
))

register_scenario(Scenario(
    name="iir",
    description="first-order IIR filter machine",
    tags=frozenset({"network", "waves", "faults"}),
    build_network=_iir_network,
    build_driver=_iir_driver,
    make_circuit=_iir_circuit,
    run_probed=_probed_iir,
))

register_scenario(Scenario(
    name="clock-relaxation",
    description="relaxation-oscillator clock (Shi & Gao chemistry) "
                "driving the same three-colour protocol",
    tags=frozenset({"network", "conformance-circuit"}),
    build_network=_relaxation_clock_network,
    build_driver=_relaxation_clock_driver,
    conformance={"target": "circuit:clock-relaxation",
                 "t_final_cap": 2.0,
                 "stochastic": False, "stiff": True, "params": {}},
))

register_scenario(Scenario(
    name="random",
    description="seeded lint-clean random mass-action network "
                "(conformance generator)",
    tags=frozenset({"network"}),
    build_network=_random_network,
))
