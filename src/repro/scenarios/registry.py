"""The shared scenario registry.

Before this module, every consumer kept its own circuit menu: the waves
runner had a ``SCENARIOS`` tuple, the fault campaigns a ``CIRCUITS``
dict, the conformance generator a private ``_circuit_targets`` and the
benchmarks re-imported builders by hand.  Adding one circuit meant four
edits, and the serving layer (``repro.serve``) would have made it five.

A :class:`Scenario` is a *name* plus up to three capabilities:

``build_network(**params)``
    the plain :class:`~repro.crn.network.Network` -- what conformance
    targets, benchmarks and ``simulate`` jobs consume;
``make_circuit(**params)``
    a fault-campaign adapter (``evaluate(scheme, plan, rng)``) -- what
    ``repro robustness`` and the certify soundness checks consume;
``run_probed(probe, **params)``
    one probed run returning a summary dict -- what ``repro waves``
    consumes;
``build_driver(**params)``
    the scenario's rich interactive driver (the ``BinaryCounter``, a
    ``SynchronousMachine``, the clock's builder/analyzer trio) -- what
    the benchmark figures consume.

Capabilities a scenario does not support are ``None``; consumers filter
with :func:`scenario_names` tags instead of try/except.  Registration
order is meaningful and preserved (CLI choice lists, conformance target
order, golden reports all depend on it).
"""

from __future__ import annotations

import difflib
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.errors import ScenarioError


@dataclass(frozen=True)
class Scenario:
    """One named, multi-capability simulation scenario."""

    name: str
    description: str
    #: capability/consumer tags (``waves``, ``faults``,
    #: ``conformance-circuit``, ``network``); :func:`scenario_names`
    #: filters on them.
    tags: frozenset = field(default_factory=frozenset)
    build_network: Callable | None = None
    make_circuit: Callable | None = None
    run_probed: Callable | None = None
    build_driver: Callable | None = None
    #: conformance-target recipe (``target`` name, ``t_final_cap``,
    #: ``stochastic``, ``stiff``, builder ``params``) for scenarios
    #: tagged ``conformance-circuit``.
    conformance: Mapping | None = None

    def network(self, **params):
        """Build the scenario's network, or fail with a clear error."""
        if self.build_network is None:
            raise ScenarioError(
                f"scenario {self.name!r} does not build a plain "
                f"network (capabilities: {sorted(self.tags)})")
        return self.build_network(**params)

    def circuit(self, **params):
        """Build the scenario's fault-campaign adapter."""
        if self.make_circuit is None:
            raise ScenarioError(
                f"scenario {self.name!r} has no fault-campaign "
                f"adapter (capabilities: {sorted(self.tags)})")
        return self.make_circuit(**params)

    def driver(self, **params):
        """Build the scenario's rich interactive driver."""
        if self.build_driver is None:
            raise ScenarioError(
                f"scenario {self.name!r} has no interactive driver "
                f"(capabilities: {sorted(self.tags)})")
        return self.build_driver(**params)


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (duplicate names are an error)."""
    if scenario.name in _REGISTRY:
        raise ScenarioError(
            f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, suggesting the nearest on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(name, sorted(_REGISTRY), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ScenarioError(
            f"unknown scenario {name!r}{hint}; registered scenarios: "
            f"{sorted(_REGISTRY)}") from None


def scenario_names(tag: str | None = None) -> tuple[str, ...]:
    """Registered names, in registration order, optionally by tag."""
    return tuple(name for name, scenario in _REGISTRY.items()
                 if tag is None or tag in scenario.tags)
